(* Customized factors (Sec. 5.1): define a new constraint by writing
   its error expression over the nine primitive operations; the
   ORIANNA compiler derives the Jacobian instructions automatically by
   backward propagation over the MO-DFG (Equ. 3/4, Fig. 11).

   The example builds a "loop rigidity" factor: a soft equality
   between two relative poses far apart in a trajectory, then shows
   (a) the generated MO-DFG, (b) that the automatic derivatives agree
   with finite differences, (c) the compiled instruction stream.

   Run with: dune exec examples/custom_factor.exe *)

open Orianna_linalg
open Orianna_lie
open Orianna_fg
open Orianna_factors
module Expr = Orianna_ir.Expr
module Modfg = Orianna_ir.Modfg

(* The user writes only this: f(xi, xj) = (xi ominus xj) ominus z,
   spelled with the primitive operations (Equ. 4 after expansion). *)
let rigidity_error ~x_i ~x_j ~z_rot ~z_trans =
  Expr.between_error ~pose_dim:3 ~x_i ~x_j ~z_rot ~z_trans

let () =
  let z = Pose3.of_phi_t [| 0.0; 0.1; -0.05 |] [| 1.0; 0.5; 0.0 |] in
  let exprs =
    rigidity_error ~x_i:"xb" ~x_j:"xa" ~z_rot:(Pose3.rotation z) ~z_trans:(Pose3.translation z)
  in
  let factor =
    Factor.symbolic ~name:"RigidityFactor" ~vars:[ "xa"; "xb" ] ~sigmas:(Array.make 6 0.1) exprs
  in

  (* (a) the MO-DFG the compiler builds from the expression. *)
  let xa = Pose3.of_phi_t [| 0.05; 0.0; 0.3 |] [| 0.2; -0.1; 0.4 |] in
  let xb = Pose3.retract (Pose3.oplus xa z) [| 0.02; -0.01; 0.03; 0.05; -0.05; 0.02 |] in
  let lookup = function "xa" -> Var.Pose3 xa | _ -> Var.Pose3 xb in
  let g = Option.get (Factor.modfg factor lookup) in
  Format.printf "%a@." Modfg.pp g;
  Format.printf "parallelism profile (ops per level): %s@.@."
    (String.concat " " (Array.to_list (Array.map string_of_int (Modfg.level_sizes g))));

  (* (b) automatic derivatives vs central finite differences. *)
  let _, blocks = Factor.linearize factor lookup in
  let numeric var value =
    let h = 1e-6 in
    Mat.init 6 6 (fun i k ->
        let tangent s =
          let t = Vec.create 6 in
          t.(k) <- s;
          t
        in
        let lk s v = if v = var then Var.Pose3 (Pose3.retract value (tangent s)) else lookup v in
        let ep = Factor.error factor (lk h) and em = Factor.error factor (lk (-.h)) in
        (ep.(i) -. em.(i)) /. (2.0 *. h))
  in
  List.iter
    (fun (var, analytic) ->
      let value = match lookup var with Var.Pose3 p -> p | _ -> assert false in
      let diff = Mat.frobenius (Mat.sub analytic (numeric var value)) in
      Format.printf "Jacobian wrt %s: |analytic - numeric| = %.2e@." var diff;
      assert (diff < 1e-4))
    blocks;

  (* (c) compile a two-pose graph using the custom factor and run it
     with accelerator semantics. *)
  let graph = Graph.create () in
  Graph.add_variable graph "xa" (Var.Pose3 xa);
  Graph.add_variable graph "xb" (Var.Pose3 xb);
  Graph.add_factor graph (Pose_factors.prior3 ~name:"anchor" ~var:"xa" ~z:xa ~sigma:0.001);
  Graph.add_factor graph factor;
  let program = Orianna_compiler.Compile.compile graph in
  Format.printf "@.compiled custom factor graph: %a@."
    Orianna_isa.Program.pp_stats (Orianna_isa.Program.stats program);
  let deltas = Orianna_isa.Program.run program in
  List.iter
    (fun (v, d) -> Format.printf "  delta %s = %a@." v Vec.pp d)
    deltas;

  (* Applying the compiled update drives the residual toward zero. *)
  let before = Graph.error graph in
  List.iter
    (fun (v, d) -> Graph.set_value graph v (Var.retract (Graph.value graph v) d))
    deltas;
  Format.printf "@.residual: %.6f -> %.6f@." before (Graph.error graph)
