(* Full application stack: the MobileRobot benchmark (Tbl. 4) run
   through both execution paths.

   The application bundles three optimization-based algorithms —
   localization, planning, control — each a factor graph.  The ORIANNA
   compiler merges them into one instruction stream; the generated
   accelerator executes it out-of-order; and we compare against the
   software solver (same optimum) and the CPU baselines (much slower).

   Run with: dune exec examples/mobile_robot_stack.exe *)

open Orianna

open Orianna_baselines
module App = Orianna_apps.App
module Schedule = Orianna_sim.Schedule

let () =
  let app = App.mobile_robot in
  Format.printf "== %s: %s ==@.@." app.App.name app.App.description;

  (* One frame of the application: three factor graphs. *)
  let e = Pipeline.evaluate app ~seed:2024 in
  List.iter
    (fun (name, g) ->
      Format.printf "  %-12s : %d variables, %d factors@." name
        (Orianna_fg.Graph.num_variables g) (Orianna_fg.Graph.num_factors g))
    e.Pipeline.eframe.Pipeline.graphs;

  let stats = Orianna_isa.Program.stats e.Pipeline.eframe.Pipeline.program in
  Format.printf "@.compiled application stream: %a@." Orianna_isa.Program.pp_stats stats;

  Format.printf "generated accelerator:@.%a@.@." Orianna_hw.Accel.pp e.Pipeline.accel;

  let show name seconds energy =
    Format.printf "  %-22s %10.1f us %10.3f mJ@." name (seconds *. 1e6) (energy *. 1e3)
  in
  show "ORIANNA-OoO" e.Pipeline.ooo.Schedule.seconds e.Pipeline.ooo.Schedule.energy_j;
  show "ORIANNA-IO" e.Pipeline.io.Schedule.seconds e.Pipeline.io.Schedule.energy_j;
  show "VANILLA-HLS (dense)" e.Pipeline.vanilla.Schedule.seconds e.Pipeline.vanilla.Schedule.energy_j;
  show "STACK (3 accels)" (Pipeline.stack_latency e) (Pipeline.stack_energy e);
  show "Intel i7" e.Pipeline.intel.Cpu_model.seconds e.Pipeline.intel.Cpu_model.energy_j;
  show "ARM A57" e.Pipeline.arm.Cpu_model.seconds e.Pipeline.arm.Cpu_model.energy_j;
  show "Jetson GPU" e.Pipeline.gpu.Gpu_model.seconds e.Pipeline.gpu.Gpu_model.energy_j;

  Format.printf "@.speedup: %.1fx over Intel, %.1fx over ARM, %.1fx over IO@."
    (e.Pipeline.intel.Cpu_model.seconds /. e.Pipeline.ooo.Schedule.seconds)
    (e.Pipeline.arm.Cpu_model.seconds /. e.Pipeline.ooo.Schedule.seconds)
    (e.Pipeline.io.Schedule.seconds /. e.Pipeline.ooo.Schedule.seconds);

  (* The datapath the generator wires between units. *)
  let dp = Orianna_hw.Datapath.generate e.Pipeline.eframe.Pipeline.program in
  Format.printf "@.%a@." Orianna_hw.Datapath.pp dp;

  (* Finally: one full mission through the compiled semantics. *)
  let ok = app.App.mission ~seed:1 ~solver:`Compiled in
  Format.printf "@.mission (compiled semantics): %s@." (if ok then "SUCCESS" else "FAILURE")
