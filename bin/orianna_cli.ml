(* ORIANNA command-line driver.

   Subcommands walk the Fig. 2 pipeline:
     solve       run the software factor-graph solver on an application
     compile     lower an application to the matrix instruction stream
     generate    hardware generation under resource constraints
     simulate    cycle-level execution on a generated accelerator
     profile     instrumented compile→generate→simulate with span tree
     mission     Tbl. 5 mission success rates
     sphere      the Sec. 4.3 representation study
     faults      seeded fault-injection campaign with recovery stats
     serve       multi-tenant serving runtime over an accelerator fleet
     experiments regenerate every table and figure *)

open Cmdliner
open Orianna
open Orianna_util
open Orianna_hw
open Orianna_sim
open Orianna_baselines
module App = Orianna_apps.App
module Sphere = Orianna_apps.Sphere
module Program = Orianna_isa.Program
module Graph = Orianna_fg.Graph
module Obs = Orianna_obs.Obs
module Chrome_trace = Orianna_obs.Chrome_trace
module Report = Orianna_obs.Report
module Fault = Orianna_fault.Fault
module Campaign = Orianna_fault.Campaign

let app_arg =
  let parse s =
    try Ok (App.find s)
    with Not_found ->
      Error (`Msg (Printf.sprintf "unknown application %S (try: %s)" s
                     (String.concat ", " (List.map (fun (a : App.t) -> a.App.name) App.all))))
  in
  let print ppf (a : App.t) = Format.fprintf ppf "%s" a.App.name in
  Arg.conv (parse, print)

let app_pos =
  Arg.(required & pos 0 (some app_arg) None & info [] ~docv:"APP" ~doc:"Application name (MobileRobot, Manipulator, AutoVehicle, Quadrotor).")

let seed_flag =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload random seed.")

let jobs_flag =
  Arg.(value & opt (some int) None
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for the parallel sweeps (DSE candidates, fault missions, \
                 experiment matrices). Defaults to $(b,ORIANNA_JOBS) or the machine's \
                 recommended domain count; 1 forces fully sequential execution. Results are \
                 bit-identical for any value.")

let set_jobs jobs = Option.iter Orianna_par.Pool.set_default_jobs jobs

let opt_level_flag =
  Arg.(value & opt int 1
       & info [ "opt-level"; "O" ] ~docv:"N"
           ~doc:"Instruction-stream optimization level: 0 = off, 1 = CSE + peephole fusion + DCE + \
                 latency-aware reorder (default), 2 = additionally reorder with stall attribution \
                 measured by a cycle-level schedule of the compiled stream, 3 = profile-guided \
                 fixpoint (resource-aware list scheduling + superword batching of same-shape \
                 matrix ops, every pass accepted only if the measured cycle count improves).")

(* ---------------- observability plumbing ---------------- *)

let trace_flag =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON file (load it at ui.perfetto.dev or chrome://tracing).")

let report_flag =
  Arg.(value & opt (some string) None
       & info [ "report" ] ~docv:"FILE"
           ~doc:"Write a flat JSON run report: counters, gauges, histogram summaries and the span tree.")

(* Run [f] with the telemetry registry enabled whenever an export was
   requested; [f] returns extra trace events (e.g. the scheduler's
   per-instruction slices) to append after the pipeline spans. *)
(* Command-specific meta fields first, then the standard provenance
   header (git rev, jobs, domains, ocaml version, timestamp). *)
let std_meta meta =
  Report.standard_meta ~extra:meta ~jobs:(Orianna_par.Pool.default_jobs ()) ()

let with_obs ~trace ~report ~meta f =
  if trace <> None || report <> None then Obs.enable ();
  let extra = f () in
  Option.iter
    (fun path ->
      Chrome_trace.write_file path (Chrome_trace.of_spans (Obs.spans ()) @ extra);
      Format.printf "wrote %s@." path)
    trace;
  Option.iter
    (fun path ->
      Report.write_file ~meta:(std_meta meta) path;
      Format.printf "wrote %s@." path)
    report

(* ---------------- solve ---------------- *)

let solve_cmd =
  let run app seed =
    let graphs = app.App.graphs (Rng.of_int seed) in
    List.iter
      (fun (name, g) ->
        let before = Graph.error g in
        let report = Orianna_fg.Optimizer.optimize g in
        Format.printf "%-12s %3d vars %3d factors : error %10.4g -> %10.4g in %d iterations@."
          name (Graph.num_variables g) (Graph.num_factors g) before
          report.Orianna_fg.Optimizer.final_error report.Orianna_fg.Optimizer.iterations)
      graphs
  in
  let term = Term.(const run $ app_pos $ seed_flag) in
  Cmd.v (Cmd.info "solve" ~doc:"Run the software factor-graph solver on an application frame.") term

(* ---------------- compile ---------------- *)

let compile_cmd =
  let dense = Arg.(value & flag & info [ "dense" ] ~doc:"Use the VANILLA-HLS dense lowering.") in
  let dump = Arg.(value & flag & info [ "dump" ] ~doc:"Print the full instruction listing.") in
  let run app seed opt_level dense dump trace report =
    with_obs ~trace ~report
      ~meta:
        [
          ("command", "compile");
          ("app", app.App.name);
          ("seed", string_of_int seed);
          ("opt_level", string_of_int opt_level);
        ]
    @@ fun () ->
    let graphs = app.App.graphs (Rng.of_int seed) in
    let program =
      if dense then Orianna_compiler.Compile.compile_dense_application ~opt_level graphs
      else Orianna_compiler.Compile.compile_application ~opt_level graphs
    in
    let program =
      if opt_level >= 3 then Opt_loop.optimize ~level:opt_level program
      else if opt_level >= 2 then Pipeline.reoptimize program
      else program
    in
    Format.printf "%a@." Program.pp_stats (Program.stats program);
    if dump then Format.printf "%a@." Program.pp program;
    []
  in
  let term =
    Term.(const run $ app_pos $ seed_flag $ opt_level_flag $ dense $ dump $ trace_flag $ report_flag)
  in
  Cmd.v (Cmd.info "compile" ~doc:"Lower an application to the ORIANNA instruction stream.") term

(* ---------------- generate ---------------- *)

let generate_cmd =
  let dsp = Arg.(value & opt int Resource.zc706.Resource.dsp & info [ "dsp" ] ~docv:"N" ~doc:"DSP budget.") in
  let objective =
    Arg.(value & opt (enum [ ("latency", `Latency); ("energy", `Energy) ]) `Latency
         & info [ "objective" ] ~doc:"Generation objective.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the DSE trace and chosen configuration as JSON. Everything outside the \
                   $(b,meta) header is a pure function of the inputs (no timings), so the payload \
                   diffs byte-for-byte across job counts.")
  in
  let run app seed jobs dsp objective json trace report =
    set_jobs jobs;
    with_obs ~trace ~report
      ~meta:[ ("command", "generate"); ("app", app.App.name); ("seed", string_of_int seed) ]
    @@ fun () ->
    let frame = Pipeline.frame app ~seed in
    let budget = { Resource.zc706 with Resource.dsp = dsp } in
    let result = Pipeline.generate ~budget ~objective frame.Pipeline.program in
    if json then begin
      let module J = Orianna_obs.Json in
      let meta =
        [
          ("command", J.Str "generate");
          ("app", J.Str app.App.name);
          ("seed", J.int seed);
          ("dsp", J.int dsp);
          ( "objective",
            J.Str (match objective with `Latency -> "latency" | `Energy -> "energy") );
        ]
        @ List.map (fun (k, v) -> (k, J.Str v)) (std_meta [])
      in
      print_endline (J.to_string (Dse.result_json ~meta result))
    end
    else begin
      List.iter
        (fun (s : Dse.step) ->
          let what =
            match s.Dse.added with None -> "(initial)" | some -> Dse.move_name some
          in
          Format.printf "  %-12s objective %.4g  (%a)@." what s.Dse.objective Resource.pp
            s.Dse.resources)
        result.Dse.trace;
      Format.printf "%a@." Accel.pp result.Dse.best
    end;
    []
  in
  let term =
    Term.(const run $ app_pos $ seed_flag $ jobs_flag $ dsp $ objective $ json_flag $ trace_flag
          $ report_flag)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate an accelerator for an application under a resource budget.")
    term

(* ---------------- simulate ---------------- *)

let simulate_cmd =
  let policy =
    Arg.(value
         & opt (enum [ ("ooo", Schedule.Ooo_full); ("fine", Schedule.Ooo_fine); ("io", Schedule.In_order) ]) Schedule.Ooo_full
         & info [ "policy" ] ~doc:"Issue policy: ooo, fine or io.")
  in
  let timeline =
    Arg.(value & flag
         & info [ "timeline" ]
             ~doc:"Print the per-unit-class utilization heat-strip alongside the summary.")
  in
  let run app seed jobs opt_level policy timeline trace report =
    set_jobs jobs;
    with_obs ~trace ~report
      ~meta:
        [
          ("command", "simulate");
          ("app", app.App.name);
          ("seed", string_of_int seed);
          ("policy", Schedule.policy_name policy);
          ("opt_level", string_of_int opt_level);
        ]
    @@ fun () ->
    let frame = Pipeline.frame ~opt_level app ~seed in
    let accel = (Pipeline.generate frame.Pipeline.program).Dse.best in
    let r = Schedule.run ~accel ~policy frame.Pipeline.program in
    Format.printf "%a@." Schedule.pp_result r;
    if timeline then print_string (Orianna_sim.Trace.utilization_timeline frame.Pipeline.program r);
    let arm = Cpu_model.run Cpu_model.arm ~construct_flop_scale:Pipeline.se3_construct_scale frame.Pipeline.program in
    let intel = Cpu_model.run Cpu_model.intel ~construct_flop_scale:Pipeline.se3_construct_scale frame.Pipeline.program in
    Format.printf "speedup: %.1fx over ARM, %.1fx over Intel@."
      (arm.Cpu_model.seconds /. r.Schedule.seconds)
      (intel.Cpu_model.seconds /. r.Schedule.seconds);
    if trace <> None then Orianna_sim.Trace.chrome_events frame.Pipeline.program r else []
  in
  let term =
    Term.(const run $ app_pos $ seed_flag $ jobs_flag $ opt_level_flag $ policy $ timeline
          $ trace_flag $ report_flag)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Cycle-level execution on a generated accelerator.") term

(* ---------------- trace ---------------- *)

let trace_cmd =
  let policy =
    Arg.(value
         & opt (enum [ ("ooo", Schedule.Ooo_full); ("fine", Schedule.Ooo_fine); ("io", Schedule.In_order) ]) Schedule.Ooo_full
         & info [ "policy" ] ~doc:"Issue policy: ooo, fine or io.")
  in
  let gantt = Arg.(value & opt (some string) None & info [ "gantt" ] ~docv:"FILE" ~doc:"Write a per-instruction schedule CSV.") in
  let dot = Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc:"Write the dependency DAG as GraphViz dot.") in
  let svg = Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc:"Write a Gantt chart as SVG.") in
  let run app seed policy gantt dot svg =
    let frame = Pipeline.frame app ~seed in
    let accel = (Pipeline.generate frame.Pipeline.program).Dse.best in
    let r = Schedule.run ~accel ~policy frame.Pipeline.program in
    print_string (Orianna_sim.Trace.utilization_timeline frame.Pipeline.program r);
    Format.printf "makespan: %d cycles (%.1f us)@." r.Schedule.cycles (r.Schedule.seconds *. 1e6);
    let write path contents =
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Format.printf "wrote %s@." path
    in
    Option.iter (fun path -> write path (Orianna_sim.Trace.gantt_csv frame.Pipeline.program r)) gantt;
    Option.iter (fun path -> write path (Orianna_sim.Trace.to_dot frame.Pipeline.program)) dot;
    Option.iter (fun path -> write path (Orianna_viz.Plots.gantt_svg frame.Pipeline.program r)) svg
  in
  let term = Term.(const run $ app_pos $ seed_flag $ policy $ gantt $ dot $ svg) in
  Cmd.v (Cmd.info "trace" ~doc:"Dump schedule timelines, Gantt CSVs and dependency graphs.") term

(* ---------------- mission ---------------- *)

let mission_cmd =
  let missions = Arg.(value & opt int 30 & info [ "missions" ] ~docv:"N" ~doc:"Number of missions.") in
  let solver =
    Arg.(value & opt (enum [ ("software", `Software); ("compiled", `Compiled) ]) `Compiled
         & info [ "solver" ] ~doc:"Execution path: software or compiled.")
  in
  let run app missions solver =
    let rate = App.success_rate app ~solver ~missions in
    Format.printf "%s: %.1f%% success over %d missions@." app.App.name (100.0 *. rate) missions
  in
  let term = Term.(const run $ app_pos $ missions $ solver) in
  Cmd.v (Cmd.info "mission" ~doc:"Mission success rate (Tbl. 5).") term

(* ---------------- program image ---------------- *)

let image_cmd =
  let out = Arg.(required & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Output binary image.") in
  let run app seed out =
    let frame = Pipeline.frame app ~seed in
    let image = Orianna_isa.Encode.encode frame.Pipeline.program in
    let oc = open_out_bin out in
    output_string oc image;
    close_out oc;
    let kernels = Orianna_isa.Encode.kernel_names frame.Pipeline.program in
    Format.printf "wrote %s: %d bytes, %d instructions, %d opaque kernels@." out
      (String.length image)
      (Program.length frame.Pipeline.program)
      (List.length kernels);
    let r =
      Orianna_sim.Schedule.run
        ~accel:(Pipeline.generate frame.Pipeline.program).Dse.best
        ~policy:Orianna_sim.Schedule.Ooo_full frame.Pipeline.program
    in
    let occ = Orianna_sim.Buffer_model.analyze frame.Pipeline.program r in
    Format.printf "buffer working set: %a@." Orianna_sim.Buffer_model.pp occ
  in
  let term = Term.(const run $ app_pos $ seed_flag $ out) in
  Cmd.v (Cmd.info "image" ~doc:"Serialize an application's instruction stream to a binary image.") term

(* ---------------- sphere ---------------- *)

let sphere_cmd =
  let csv = Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Dump the Fig. 9 trajectories as CSV.") in
  let svg = Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc:"Render the Fig. 9 trajectories as SVG.") in
  let run csv svg =
    print_string (Experiments.table1 ());
    if csv <> None || svg <> None then begin
      let ds = Sphere.generate Sphere.default_config in
      let estimate = Sphere.unified_estimate ds in
      let write path contents =
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Format.printf "wrote %s@." path
      in
      Option.iter (fun path -> write path (Sphere.trajectory_csv ds ~estimate)) csv;
      Option.iter
        (fun path ->
          write path
            (Orianna_viz.Plots.trajectory_svg ~truth:ds.Sphere.truth ~initial:ds.Sphere.initial
               ~estimate ()))
        svg
    end
  in
  Cmd.v (Cmd.info "sphere" ~doc:"The Sec. 4.3 pose-representation study (Tbl. 1).")
    Term.(const run $ csv $ svg)

(* ---------------- g2o ---------------- *)

let g2o_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"g2o pose-graph file.") in
  let out = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Write the optimized graph back in g2o form.") in
  let run file out =
    let ic = open_in file in
    let n = in_channel_length ic in
    let contents = really_input_string ic n in
    close_in ic;
    let g, report = Orianna_apps.G2o.solve_file contents in
    Format.printf "%d variables, %d factors: error %.6g -> %.6g in %d iterations@."
      (Graph.num_variables g) (Graph.num_factors g) report.Orianna_fg.Optimizer.initial_error
      report.Orianna_fg.Optimizer.final_error report.Orianna_fg.Optimizer.iterations;
    Option.iter
      (fun path ->
        (* Re-emit vertices at their optimized values (edges are not
           stored on the graph; only vertices are written). *)
        let entries =
          List.filter_map
            (fun v ->
              match Graph.value g v with
              | Orianna_fg.Var.Pose2 p ->
                  Some (Orianna_apps.G2o.Vertex2 (int_of_string (String.sub v 1 (String.length v - 1)), p))
              | Orianna_fg.Var.Pose3 p ->
                  Some (Orianna_apps.G2o.Vertex3 (int_of_string (String.sub v 1 (String.length v - 1)), p))
              | Orianna_fg.Var.Se3 _ | Orianna_fg.Var.Vector _ -> None)
            (Graph.variables g)
        in
        let oc = open_out path in
        output_string oc (Orianna_apps.G2o.to_string entries);
        close_out oc;
        Format.printf "wrote %s@." path)
      out
  in
  let term = Term.(const run $ file $ out) in
  Cmd.v (Cmd.info "g2o" ~doc:"Optimize a pose graph in the standard g2o text format.") term

(* ---------------- profile ---------------- *)

let profile_cmd =
  let policy =
    Arg.(value
         & opt (enum [ ("ooo", Schedule.Ooo_full); ("fine", Schedule.Ooo_fine); ("io", Schedule.In_order) ]) Schedule.Ooo_full
         & info [ "policy" ] ~doc:"Issue policy: ooo, fine or io.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the run report as JSON to stdout instead of text tables — the same \
                   machine-readable shape `serve --report` emits.")
  in
  let par_flag =
    Arg.(value & flag
         & info [ "par" ]
             ~doc:"Parallel-efficiency report: run the DSE sweep sequentially and at $(b,--jobs) \
                   lanes, then decompose the gap to perfect scaling into serial sections, work \
                   inflation, pool overhead and idle time, with per-lane utilization and GC \
                   accounting. With $(b,--trace), each pool domain gets its own Perfetto track.")
  in
  (* --par: same workload (the generate DSE sweep) timed sequentially
     and at N lanes; [Orianna_par.Gap] splits the gap to perfect
     scaling into serial / inflation / overhead / idle components that
     account for 100% of it by construction. *)
  let run_par app seed njobs opt_level json trace report =
    let module Pool = Orianna_par.Pool in
    let module Gap = Orianna_par.Gap in
    let module J = Orianna_obs.Json in
    Obs.enable ();
    let frame = Obs.with_span "compile" (fun () -> Pipeline.frame ~opt_level app ~seed) in
    let timed_generate label jobs =
      Pool.set_default_jobs jobs;
      ignore (Pool.drain_stats ());
      let t0 = Obs.now_s () in
      let result =
        Obs.with_span ~gc:true label (fun () -> Pipeline.generate frame.Pipeline.program)
      in
      let wall = Obs.now_s () -. t0 in
      (result, wall, Pool.drain_stats ())
    in
    let seq_result, t_seq, seq_records = timed_generate "generate(seq)" 1 in
    let par_result, t_par, par_records = timed_generate "generate(par)" njobs in
    if seq_result.Dse.best <> par_result.Dse.best then
      Format.eprintf "warning: sequential and parallel DSE disagree (determinism bug)@.";
    let n = float_of_int njobs in
    let seq_sum = Pool.summarize seq_records and par_sum = Pool.summarize par_records in
    let g = Gap.decompose ~jobs:njobs ~t_seq ~t_par ~seq:seq_records ~par:par_records in
    let r_par = g.Gap.region_par_s and r_seq = g.Gap.region_seq_s in
    let s_seq = Float.max 0.0 (t_seq -. r_seq) in
    let gap = g.Gap.gap_s in
    let serial_c = g.Gap.serial_s in
    let inflation_c = g.Gap.inflation_s in
    let overhead_c = g.Gap.overhead_s in
    let idle_c = g.Gap.idle_s in
    let accounted = g.Gap.accounted_s in
    let speedup = g.Gap.speedup in
    let gc_of (s : Pool.summary) =
      Array.fold_left
        (fun (mw, mc, jc) (t : Pool.lane_totals) ->
          (mw +. t.Pool.tminor_words, mc + t.Pool.tminor_collections,
           jc + t.Pool.tmajor_collections))
        (0.0, 0, 0) s.Pool.per_lane
    in
    let mw_seq, mc_seq, jc_seq = gc_of seq_sum in
    let mw_par, mc_par, jc_par = gc_of par_sum in
    let lane_json (t : Pool.lane_totals) =
      J.Obj
        [
          ("lane", J.int t.Pool.tlane);
          ("slots", J.int t.Pool.tslots);
          ("busy_s", J.Num t.Pool.tbusy_s);
          ("utilization", J.Num (if r_par > 0.0 then t.Pool.tbusy_s /. r_par else 0.0));
          ("minor_words", J.Num t.Pool.tminor_words);
          ("minor_collections", J.int t.Pool.tminor_collections);
          ("major_collections", J.int t.Pool.tmajor_collections);
        ]
    in
    let par_json =
      ( "par",
        J.Obj
          (Gap.json_fields g
          @ [
              ( "gc",
                J.Obj
                  [
                    ("minor_words_seq", J.Num mw_seq);
                    ("minor_words_par", J.Num mw_par);
                    ("minor_collections_seq", J.int mc_seq);
                    ("minor_collections_par", J.int mc_par);
                    ("major_collections_seq", J.int jc_seq);
                    ("major_collections_par", J.int jc_par);
                  ] );
              ("lanes", J.Arr (Array.to_list (Array.map lane_json par_sum.Pool.per_lane)));
            ]) )
    in
    let meta =
      std_meta
        [
          ("command", "profile--par");
          ("app", app.App.name);
          ("seed", string_of_int seed);
          ("opt_level", string_of_int opt_level);
        ]
    in
    if json then print_endline (Report.to_string ~meta ~extra:[ par_json ] ())
    else begin
      let ms v = v *. 1e3 in
      let pct part = if gap > 1e-9 then 100.0 *. part /. gap else 0.0 in
      Format.printf "parallel efficiency: %s generate sweep, %d jobs@." app.App.name njobs;
      Format.printf "  sequential  %8.1f ms  (pool regions %.1f ms, serial %.1f ms)@."
        (ms t_seq) (ms r_seq) (ms s_seq);
      Format.printf "  parallel    %8.1f ms  speedup %.2fx  efficiency %.1f%%@." (ms t_par)
        speedup (100.0 *. speedup /. n);
      Format.printf "  perfect scaling: %.1f ms; gap %.1f ms, accounted %.1f ms (%.0f%%):@."
        (ms (t_seq /. n)) (ms gap) (ms accounted)
        (if gap > 1e-9 then 100.0 *. accounted /. gap else 100.0);
      Format.printf "    serial sections (not parallelized) %8.1f ms  %5.1f%%@." (ms serial_c)
        (pct serial_c);
      Format.printf "    work inflation (par vs seq busy)   %8.1f ms  %5.1f%%@."
        (ms inflation_c) (pct inflation_c);
      Format.printf "    pool overhead (dispatch + join)    %8.1f ms  %5.1f%%@."
        (ms overhead_c) (pct overhead_c);
      Format.printf "    idle lanes (imbalance / tail)      %8.1f ms  %5.1f%%@." (ms idle_c)
        (pct idle_c);
      let t =
        Texttable.create ~title:"Per-lane"
          ~headers:[ "lane"; "slots"; "busy ms"; "util %"; "minor words"; "minor gc"; "major gc" ]
      in
      Array.iter
        (fun (lt : Pool.lane_totals) ->
          Texttable.add_row t
            [
              (if lt.Pool.tlane = 0 then "0 (caller)" else string_of_int lt.Pool.tlane);
              string_of_int lt.Pool.tslots;
              Printf.sprintf "%.1f" (ms lt.Pool.tbusy_s);
              Printf.sprintf "%.1f"
                (if r_par > 0.0 then 100.0 *. lt.Pool.tbusy_s /. r_par else 0.0);
              Printf.sprintf "%.3g" lt.Pool.tminor_words;
              string_of_int lt.Pool.tminor_collections;
              string_of_int lt.Pool.tmajor_collections;
            ])
        par_sum.Pool.per_lane;
      Texttable.print t;
      Format.printf
        "  GC: minor words %.3g -> %.3g (%.2fx), minor collections %d -> %d, major %d -> %d@."
        mw_seq mw_par
        (if mw_seq > 0.0 then mw_par /. mw_seq else 0.0)
        mc_seq mc_par jc_seq jc_par
    end;
    Option.iter
      (fun path ->
        Chrome_trace.write_file path
          (Chrome_trace.of_spans (Obs.spans ()) @ Pool.chrome_events par_records);
        Format.printf "wrote %s@." path)
      trace;
    Option.iter
      (fun path ->
        Report.write_file ~meta ~extra:[ par_json ] path;
        Format.printf "wrote %s@." path)
      report
  in
  let run app seed jobs opt_level policy json par trace report =
    if par then
      run_par app seed
        (match jobs with Some n -> max 1 n | None -> Orianna_par.Pool.default_jobs ())
        opt_level json trace report
    else begin
    set_jobs jobs;
    Obs.enable ();
    let frame = Obs.with_span "compile" (fun () -> Pipeline.frame ~opt_level app ~seed) in
    let accel =
      Obs.with_span "generate" (fun () -> (Pipeline.generate frame.Pipeline.program).Dse.best)
    in
    let r = Obs.with_span "simulate" (fun () -> Schedule.run ~accel ~policy frame.Pipeline.program) in
    (* Per-pass cycle attribution: rerun the optimizer from the O0
       stream with a measured probe on the generated accelerator, so
       every accepted (or rejected) pass reports its cycle delta. *)
    let opt_deltas =
      if opt_level >= 1 then
        Obs.with_span "opt-passes" (fun () ->
            let p0 =
              Orianna_compiler.Compile.compile_application ~opt_level:0 frame.Pipeline.graphs
            in
            let _, _, rep = Opt_loop.optimize_traced ~accel ~policy ~level:opt_level p0 in
            rep.Orianna_isa.Opt.cycle_deltas)
      else []
    in
    let meta =
      std_meta
        [
          ("command", "profile");
          ("app", app.App.name);
          ("seed", string_of_int seed);
          ("policy", Schedule.policy_name policy);
          ("opt_level", string_of_int opt_level);
        ]
    in
    let profile_extra =
      ( "profile",
        Orianna_obs.Json.Obj
          [
            ("instructions", Orianna_obs.Json.int r.Schedule.instructions);
            ("cycles", Orianna_obs.Json.int r.Schedule.cycles);
            ("seconds", Orianna_obs.Json.Num r.Schedule.seconds);
            ( "opt_passes",
              Orianna_obs.Json.Arr
                (List.map
                   (fun (pass, d) ->
                     Orianna_obs.Json.Obj
                       [
                         ("pass", Orianna_obs.Json.Str pass);
                         ("cycles_saved", Orianna_obs.Json.int d);
                       ])
                   opt_deltas) );
          ] )
    in
    if json then print_endline (Report.to_string ~meta ~extra:[ profile_extra ] ())
    else begin
    Format.printf "%s %s: %d instructions, %d cycles (%.3f ms simulated)@.@." app.App.name
      (Schedule.policy_name policy) r.Schedule.instructions r.Schedule.cycles
      (r.Schedule.seconds *. 1e3);
    if opt_deltas <> [] then begin
      let t =
        Texttable.create ~title:(Printf.sprintf "Optimizer passes (O0 -> O%d, measured)" opt_level)
          ~headers:[ "pass"; "cycles saved" ]
      in
      List.iter (fun (pass, d) -> Texttable.add_row t [ pass; string_of_int d ]) opt_deltas;
      Texttable.add_row t
        [ "total"; string_of_int (List.fold_left (fun acc (_, d) -> acc + d) 0 opt_deltas) ];
      Texttable.print t
    end;
    Format.printf "%a@." Obs.pp_spans (Obs.spans ());
    let counters = Obs.counters () in
    if counters <> [] then begin
      let t = Texttable.create ~title:"Counters" ~headers:[ "counter"; "value" ] in
      List.iter (fun (name, v) -> Texttable.add_row t [ name; string_of_int v ]) counters;
      Texttable.print t
    end;
    let gauges = Obs.gauges () in
    if gauges <> [] then begin
      let t = Texttable.create ~title:"Gauges" ~headers:[ "gauge"; "value" ] in
      List.iter (fun (name, v) -> Texttable.add_row t [ name; Printf.sprintf "%.6g" v ]) gauges;
      Texttable.print t
    end;
    let histograms = Obs.histograms () in
    if histograms <> [] then begin
      let t =
        Texttable.create ~title:"Histograms"
          ~headers:[ "histogram"; "samples"; "mean"; "min"; "max" ]
      in
      List.iter
        (fun (name, h) ->
          Texttable.add_row t
            [
              name;
              string_of_int h.Obs.samples;
              Printf.sprintf "%.4g" (Obs.mean h);
              Printf.sprintf "%.4g" h.Obs.hmin;
              Printf.sprintf "%.4g" h.Obs.hmax;
            ])
        histograms;
      Texttable.print t
    end
    end;
    Option.iter
      (fun path ->
        Chrome_trace.write_file path
          (Chrome_trace.of_spans (Obs.spans ())
          @ Orianna_sim.Trace.chrome_events frame.Pipeline.program r);
        Format.printf "wrote %s@." path)
      trace;
    Option.iter
      (fun path ->
        Report.write_file ~meta ~extra:[ profile_extra ] path;
        Format.printf "wrote %s@." path)
      report
    end
  in
  let term =
    Term.(
      const run $ app_pos $ seed_flag $ jobs_flag $ opt_level_flag $ policy $ json_flag
      $ par_flag $ trace_flag $ report_flag)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run the full compile -> generate -> simulate pipeline under telemetry and print the span tree and counters.")
    term

(* ---------------- faults ---------------- *)

let faults_cmd =
  let missions =
    Arg.(value & opt int Campaign.default_config.Campaign.missions
         & info [ "missions" ] ~docv:"N" ~doc:"Monte-Carlo missions (one injected fault each).")
  in
  let policy =
    Arg.(value
         & opt (enum [ ("ooo", Schedule.Ooo_full); ("fine", Schedule.Ooo_fine); ("io", Schedule.In_order) ]) Schedule.Ooo_full
         & info [ "policy" ] ~doc:"Issue policy: ooo, fine or io.")
  in
  let retries =
    Arg.(value & opt int Campaign.default_config.Campaign.max_retries
         & info [ "retries" ] ~docv:"K" ~doc:"Bounded retry budget per detected fault.")
  in
  let events =
    Arg.(value & flag & info [ "events" ] ~doc:"Print the per-mission event log before the summary.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the mission log and summary as JSON instead of the table. The output \
                   contains no timings, so it diffs byte-for-byte across job counts.")
  in
  let run app seed jobs missions policy retries events json trace report =
    set_jobs jobs;
    let any_escaped = ref false in
    with_obs ~trace ~report
      ~meta:
        [
          ("command", "faults");
          ("app", app.App.name);
          ("seed", string_of_int seed);
          ("missions", string_of_int missions);
        ]
      (fun () ->
        let frame = Pipeline.frame app ~seed in
        let accel = (Pipeline.generate frame.Pipeline.program).Dse.best in
        let config =
          { Campaign.default_config with Campaign.missions; policy; max_retries = retries }
        in
        let summary =
          Campaign.run ~config ~rng:(Rng.of_int seed) ~graphs:frame.Pipeline.graphs
            ~program:frame.Pipeline.program ~accel ()
        in
        if json then begin
          let module J = Orianna_obs.Json in
          let meta =
            [
              ("command", J.Str "faults");
              ("app", J.Str app.App.name);
              ("seed", J.int seed);
              ("missions", J.int missions);
              ("policy", J.Str (Schedule.policy_name policy));
              ("accel", J.Str accel.Accel.name);
            ]
            @ List.map (fun (k, v) -> (k, J.Str v)) (std_meta [])
          in
          print_endline (J.to_string (Campaign.json ~meta summary))
        end
        else begin
          if events then
            List.iter (fun e -> Format.printf "%a@." Fault.pp_event e) summary.Campaign.events;
          Format.printf "%s %s, seed %d: %d missions on %s@." app.App.name
            (Schedule.policy_name policy) seed missions accel.Accel.name;
          print_string (Campaign.table summary)
        end;
        any_escaped := Campaign.escaped summary;
        []);
    if !any_escaped then begin
      Format.eprintf "FAULT ESCAPE: at least one injected fault evaded detection and recovery@.";
      exit 1
    end
  in
  let term =
    Term.(const run $ app_pos $ seed_flag $ jobs_flag $ missions $ policy $ retries $ events
          $ json_flag $ trace_flag $ report_flag)
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Monte-Carlo fault-injection campaign: inject seeded faults, report detection / recovery / escape rates, exit non-zero iff a fault escapes.")
    term

(* ---------------- serve ---------------- *)

let serve_cmd =
  let module Serve = Orianna_serve.Serve in
  let module Request = Orianna_serve.Request in
  let module Dispatch = Orianna_serve.Dispatch in
  let module Cache = Orianna_serve.Cache in
  let apps_flag =
    Arg.(value & opt string "all"
         & info [ "apps" ] ~docv:"APPS"
             ~doc:"Comma-separated application names, or \"all\" for every registered app.")
  in
  let requests = Arg.(value & opt int 200 & info [ "requests" ] ~docv:"N" ~doc:"Trace length.") in
  let rate = Arg.(value & opt float 20000.0 & info [ "rate" ] ~docv:"HZ" ~doc:"Mean arrival rate.") in
  let burst =
    Arg.(value & opt int 0
         & info [ "burst" ] ~docv:"K"
             ~doc:"Clump arrivals into back-to-back groups of $(docv) (0 = Poisson).")
  in
  let instances =
    Arg.(value & opt int Serve.default_config.Serve.instances
         & info [ "instances" ] ~docv:"N" ~doc:"Accelerator fleet size.")
  in
  let policy =
    Arg.(value
         & opt (enum [ ("fifo", Dispatch.Fifo); ("edf", Dispatch.Edf); ("least-loaded", Dispatch.Least_loaded) ])
             Serve.default_config.Serve.policy
         & info [ "policy" ] ~doc:"Dispatch policy: fifo, edf or least-loaded.")
  in
  let queue =
    Arg.(value & opt int Serve.default_config.Serve.queue_capacity
         & info [ "queue" ] ~docv:"N" ~doc:"Admission-queue capacity.")
  in
  let max_batch =
    Arg.(value & opt int Serve.default_config.Serve.max_batch
         & info [ "max-batch" ] ~docv:"N" ~doc:"Largest same-program batch.")
  in
  let cache_capacity =
    Arg.(value & opt int Serve.default_config.Serve.cache_capacity
         & info [ "cache" ] ~docv:"N" ~doc:"Compile-cache capacity (entries).")
  in
  let deadline_ms =
    Arg.(value & opt (pair ~sep:',' float float) (1.0, 4.0)
         & info [ "deadline-ms" ] ~docv:"LO,HI" ~doc:"Uniform deadline slack range in ms.")
  in
  let mask =
    let parse s =
      match String.index_opt s '@' with
      | None -> Error (`Msg "expected CLASS@INSTANCE, e.g. qr@1")
      | Some i -> (
          let cname = String.lowercase_ascii (String.sub s 0 i) in
          let idx = String.sub s (i + 1) (String.length s - i - 1) in
          match
            ( List.find_opt
                (fun c -> String.lowercase_ascii (Unit_model.class_name c) = cname)
                Unit_model.all_classes,
              int_of_string_opt idx )
          with
          | Some c, Some i -> Ok (i, c)
          | None, _ ->
              Error
                (`Msg
                   (Printf.sprintf "unknown unit class %S (try: %s)" cname
                      (String.concat ", "
                         (List.map
                            (fun c -> String.lowercase_ascii (Unit_model.class_name c))
                            Unit_model.all_classes))))
          | _, None -> Error (`Msg (Printf.sprintf "bad instance index %S" idx)))
    in
    let print ppf (i, c) = Format.fprintf ppf "%s@%d" (Unit_model.class_name c) i in
    Arg.(value & opt_all (conv (parse, print)) []
         & info [ "mask" ] ~docv:"CLASS@IDX"
             ~doc:"Degrade a fleet instance: mask one failed unit of CLASS out of instance IDX \
                   (repeatable). The dispatcher reroutes programs the degraded instance can no \
                   longer execute.")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the machine-readable report to stdout.")
  in
  let baseline =
    Arg.(value & opt (some file) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Compare the deadline-miss rate against a checked-in baseline JSON and exit \
                   non-zero on regression.")
  in
  let chaos_rate =
    Arg.(value & opt float 0.0
         & info [ "chaos" ] ~docv:"RATE"
             ~doc:"Inject seeded instance faults targeting this steady-state per-instance \
                   unavailability (e.g. 0.1); 0 disables chaos.")
  in
  let mttr =
    Arg.(value & opt float Orianna_serve.Chaos.default.Orianna_serve.Chaos.restart_mean_s
         & info [ "mttr" ] ~docv:"S" ~doc:"Mean time to restart a crashed instance, seconds.")
  in
  let retries =
    Arg.(value & opt int Serve.default_config.Serve.max_retries
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry budget per request copy recovered from a failed instance.")
  in
  let hedge =
    Arg.(value & flag
         & info [ "hedge" ]
             ~doc:"Launch a hedged duplicate for near-deadline retries; first completion wins.")
  in
  let chaos_seed =
    Arg.(value & opt (some int) None
         & info [ "chaos-seed" ] ~docv:"SEED"
             ~doc:"Seed for the chaos schedule (defaults to the trace seed).")
  in
  let chaos_baseline =
    Arg.(value & opt (some file) None
         & info [ "chaos-baseline" ] ~docv:"FILE"
             ~doc:"Gate the chaos run on a checked-in baseline: availability floor and p99 \
                   ceiling per apps key; also fails on any silent request loss.")
  in
  let run apps_spec seed jobs opt_level requests rate burst instances policy queue max_batch
      cache_capacity deadline_ms masked json baseline chaos_rate mttr retries hedge chaos_seed
      chaos_baseline trace report =
    set_jobs jobs;
    let apps =
      if String.lowercase_ascii apps_spec = "all" then List.map (fun (a : App.t) -> a.App.name) App.all
      else
        String.split_on_char ',' apps_spec
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.map (fun s -> (App.find s).App.name)
    in
    if apps = [] then begin
      Format.eprintf "no applications selected@.";
      exit 2
    end;
    let shape =
      if burst > 1 then Request.Bursty { rate_hz = rate; burst } else Request.Poisson { rate_hz = rate }
    in
    let dl_lo, dl_hi = deadline_ms in
    let trace_reqs =
      Request.generate ~rng:(Rng.of_int seed) ~shape ~apps
        ~deadline_s:(dl_lo *. 1e-3, dl_hi *. 1e-3)
        ~n:requests
    in
    let chaos =
      if chaos_rate <= 0.0 then None
      else
        Some
          (Orianna_serve.Chaos.of_intensity
             ~seed:(Option.value chaos_seed ~default:seed)
             ~mttr_s:mttr chaos_rate)
    in
    let config =
      {
        Orianna_serve.Serve.default_config with
        Serve.instances;
        masked;
        policy;
        queue_capacity = queue;
        max_batch;
        cache_capacity;
        opt_level;
        chaos;
        max_retries = retries;
        hedge;
      }
    in
    let meta =
      std_meta
        ([
           ("command", "serve");
           ("apps", String.concat "," apps);
           ("seed", string_of_int seed);
           ("requests", string_of_int requests);
           ("policy", Dispatch.policy_name policy);
         ]
        @
        if chaos = None then []
        else
          [
            ("chaos", Printf.sprintf "%g" chaos_rate);
            ("mttr_s", Printf.sprintf "%g" mttr);
            ("retries", string_of_int retries);
            ("hedge", string_of_bool hedge);
          ])
    in
    if trace <> None || report <> None then Obs.enable ();
    let r = Serve.run ~config ~trace:trace_reqs () in
    Option.iter
      (fun path ->
        Chrome_trace.write_file path
          (Chrome_trace.of_spans (Obs.spans ()) @ Serve.chrome_events r);
        Format.printf "wrote %s@." path)
      trace;
    (* The flat run report embeds the campaign summary under "serve",
       the same shape `profile --json` uses for its section. *)
    Option.iter
      (fun path ->
        Report.write_file ~meta ~extra:[ ("serve", Serve.report_json r) ] path;
        Format.printf "wrote %s@." path)
      report;
    if json then print_endline (Orianna_obs.Json.to_string
                                  (Orianna_obs.Json.Obj
                                     [
                                       ("meta", Orianna_obs.Json.Obj (List.map (fun (k, v) -> (k, Orianna_obs.Json.Str v)) meta));
                                       ("serve", Serve.report_json r);
                                     ]))
    else print_string (Serve.table r);
    Option.iter
      (fun path ->
        let ic = open_in path in
        let contents = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let json = Orianna_obs.Json.parse contents in
        let key = String.lowercase_ascii apps_spec in
        match Orianna_obs.Json.member key json with
        | None ->
            Format.eprintf "baseline %s has no entry for %S@." path key;
            exit 1
        | Some entry -> (
            match Orianna_obs.Json.member "deadline_miss_rate" entry with
            | Some (Orianna_obs.Json.Num expected) ->
                let tolerance = 0.005 in
                if r.Serve.deadline_miss_rate > expected +. tolerance then begin
                  Format.eprintf
                    "DEADLINE-MISS REGRESSION: %s: rate %.4f exceeds baseline %.4f (+%.3f tolerance)@."
                    key r.Serve.deadline_miss_rate expected tolerance;
                  exit 1
                end
                else
                  Format.printf "baseline ok: %s deadline-miss rate %.4f <= %.4f (+%.3f)@." key
                    r.Serve.deadline_miss_rate expected tolerance
            | _ ->
                Format.eprintf "baseline %s entry %S lacks deadline_miss_rate@." path key;
                exit 1))
      baseline;
    Option.iter
      (fun path ->
        let ic = open_in path in
        let contents = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let bjson = Orianna_obs.Json.parse contents in
        let key = String.lowercase_ascii apps_spec in
        (* Conservation first: a chaos run must never lose an admitted
           request silently, whatever the baseline says. *)
        if not (Orianna_fault.Fleet_chaos.conserved trace_reqs r) then begin
          Format.eprintf
            "SILENT LOSS: %s: completions + rejections do not partition the trace ids@." key;
          exit 1
        end;
        match Orianna_obs.Json.member key bjson with
        | None ->
            Format.eprintf "chaos baseline %s has no entry for %S@." path key;
            exit 1
        | Some entry -> (
            let availability =
              match r.Serve.chaos with Some c -> c.Serve.availability | None -> 1.0
            in
            match
              ( Orianna_obs.Json.member "availability_floor" entry,
                Orianna_obs.Json.member "p99_ceiling_ms" entry )
            with
            | Some (Orianna_obs.Json.Num floor), Some (Orianna_obs.Json.Num ceiling) ->
                if availability < floor then begin
                  Format.eprintf
                    "AVAILABILITY REGRESSION: %s: %.4f below baseline floor %.4f@." key
                    availability floor;
                  exit 1
                end;
                if r.Serve.p99_ms > ceiling then begin
                  Format.eprintf
                    "P99-UNDER-FAULTS REGRESSION: %s: %.3f ms exceeds ceiling %.3f ms@." key
                    r.Serve.p99_ms ceiling;
                  exit 1
                end;
                Format.printf
                  "chaos baseline ok: %s availability %.4f >= %.4f, p99 %.3f <= %.3f ms@." key
                  availability floor r.Serve.p99_ms ceiling
            | _ ->
                Format.eprintf
                  "chaos baseline %s entry %S lacks availability_floor/p99_ceiling_ms@." path key;
                exit 1))
      chaos_baseline
  in
  let term =
    Term.(const run $ apps_flag $ seed_flag $ jobs_flag $ opt_level_flag $ requests $ rate $ burst
          $ instances $ policy $ queue
          $ max_batch $ cache_capacity $ deadline_ms $ mask $ json_flag $ baseline $ chaos_rate
          $ mttr $ retries $ hedge $ chaos_seed $ chaos_baseline $ trace_flag
          $ report_flag)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Replay a seeded arrival trace through the multi-tenant serving runtime: compile \
             cache, bounded admission queue, batching and deadline-aware dispatch over an \
             accelerator fleet.")
    term

(* ---------------- sessions ---------------- *)

let sessions_cmd =
  let module Serve = Orianna_serve.Serve in
  let module Session = Orianna_serve.Session in
  let module Request = Orianna_serve.Request in
  let module Stream = Orianna_apps.Stream in
  let module Datasets = Orianna_apps.Datasets in
  let dataset =
    Arg.(value
         & opt (enum [ ("manhattan", `Manhattan); ("loopy", `Loopy); ("sphere", `Sphere) ]) `Manhattan
         & info [ "dataset" ] ~docv:"NAME"
             ~doc:"Streamed dataset: manhattan (SE(2) random walk), loopy (loop-closure-heavy \
                   synthetic mission) or sphere (SE(3) benchmark).")
  in
  let steps =
    Arg.(value & opt int 80
         & info [ "steps" ] ~docv:"N"
             ~doc:"Manhattan stream length in ticks (loopy and sphere have fixed shapes).")
  in
  let tenants =
    Arg.(value & opt int 3
         & info [ "tenants" ] ~docv:"N" ~doc:"Concurrent sessions replaying the stream.")
  in
  let period_us =
    Arg.(value & opt float 200.0
         & info [ "period-us" ] ~docv:"US" ~doc:"Tick arrival period per session, microseconds.")
  in
  let solves =
    Arg.(value & opt int 0
         & info [ "solves" ] ~docv:"N"
             ~doc:"Background one-shot solve requests mixed into the trace (all registered apps).")
  in
  let window =
    Arg.(value & opt (some int) None
         & info [ "window" ] ~docv:"N"
             ~doc:"Sliding window: marginalize each session down to its most recent $(docv) \
                   variables (default: keep everything).")
  in
  let max_sessions =
    Arg.(value & opt int Session.default_params.Session.max_sessions
         & info [ "max-sessions" ] ~docv:"N"
             ~doc:"Resident-session capacity; the least-recently-used session is evicted beyond \
                   it and restarts on its next tick.")
  in
  let idle_timeout_ms =
    Arg.(value & opt float (Session.default_params.Session.idle_timeout_s *. 1e3)
         & info [ "idle-timeout-ms" ] ~docv:"MS"
             ~doc:"Virtual-clock inactivity before a resident session expires; <= 0 disables.")
  in
  let queue =
    Arg.(value & opt int 256
         & info [ "queue" ] ~docv:"N" ~doc:"Admission-queue capacity.")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the machine-readable report to stdout.")
  in
  let baseline =
    Arg.(value & opt (some file) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Gate the run on a checked-in session baseline: exact tick and completion \
                   counts plus ceilings on restarts and the median affected fraction, keyed by \
                   dataset; exits non-zero on regression.")
  in
  let run dataset seed jobs opt_level steps tenants period_us solves window max_sessions
      idle_timeout_ms queue json baseline trace report =
    set_jobs jobs;
    let dname, stream =
      match dataset with
      | `Manhattan ->
          ( "manhattan",
            Stream.manhattan ~cfg:{ Datasets.default_config with Datasets.steps; seed } () )
      | `Loopy -> ("loopy", Stream.loopy ~cfg:{ Stream.default_loopy_config with Stream.seed } ())
      | `Sphere ->
          ( "sphere",
            Stream.sphere
              ~cfg:{ Sphere.default_config with Sphere.rings = 4; poses_per_ring = 12; seed }
              () )
    in
    let period_s = period_us *. 1e-6 in
    let missions =
      List.init (max 1 tenants) (fun mid ->
          {
            Session.mid;
            stream;
            start_s = float_of_int mid *. period_s /. float_of_int (max 1 tenants);
            period_s;
            priority = Request.Normal;
            deadline_slack_s = 50e-3;
          })
    in
    let params =
      {
        Session.default_params with
        Session.max_sessions;
        idle_timeout_s = idle_timeout_ms *. 1e-3;
        window;
      }
    in
    let sessions = Session.create ~params ~opt_level ~missions () in
    let solve_trace =
      if solves <= 0 then []
      else
        Request.generate ~rng:(Rng.of_int seed)
          ~shape:(Request.Poisson { rate_hz = 20000.0 })
          ~apps:(List.map (fun (a : App.t) -> a.App.name) App.all)
          ~deadline_s:(1e-3, 4e-3) ~n:solves
    in
    let config = { Serve.default_config with Serve.queue_capacity = queue; opt_level } in
    let meta =
      std_meta
        [
          ("command", "sessions");
          ("dataset", dname);
          ("seed", string_of_int seed);
          ("tenants", string_of_int (max 1 tenants));
          ("ticks", string_of_int (Stream.length stream));
          ("period_us", Printf.sprintf "%g" period_us);
          ("solves", string_of_int (max 0 solves));
        ]
    in
    if trace <> None || report <> None then Obs.enable ();
    let r = Serve.run ~config ~sessions ~trace:solve_trace () in
    Option.iter
      (fun path ->
        Chrome_trace.write_file path
          (Chrome_trace.of_spans (Obs.spans ()) @ Serve.chrome_events r);
        Format.printf "wrote %s@." path)
      trace;
    Option.iter
      (fun path ->
        Report.write_file ~meta ~extra:[ ("serve", Serve.report_json r) ] path;
        Format.printf "wrote %s@." path)
      report;
    if json then
      print_endline
        (Orianna_obs.Json.to_string
           (Orianna_obs.Json.Obj
              [
                ("meta", Orianna_obs.Json.Obj (List.map (fun (k, v) -> (k, Orianna_obs.Json.Str v)) meta));
                ("serve", Serve.report_json r);
              ]))
    else print_string (Serve.table r);
    Option.iter
      (fun path ->
        let ic = open_in path in
        let contents = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let bjson = Orianna_obs.Json.parse contents in
        match Orianna_obs.Json.member dname bjson with
        | None ->
            Format.eprintf "session baseline %s has no entry for %S@." path dname;
            exit 1
        | Some entry ->
            let sr =
              match r.Serve.sessions with
              | Some sr -> sr
              | None ->
                  Format.eprintf "session baseline: the run carried no session report@.";
                  exit 1
            in
            let num k =
              match Orianna_obs.Json.member k entry with
              | Some (Orianna_obs.Json.Num v) -> v
              | _ ->
                  Format.eprintf "session baseline %s entry %S lacks %s@." path dname k;
                  exit 1
            in
            (* The tick count and completion total are exact: the DES is
               deterministic, so any drift is a real behaviour change,
               not noise.  Restarts and the affected fraction get
               ceilings — the incremental win is the whole point. *)
            if sr.Session.ticks_total <> int_of_float (num "ticks_total") then begin
              Format.eprintf "SESSION-TICKS MISMATCH: %s: applied %d, baseline %d@." dname
                sr.Session.ticks_total
                (int_of_float (num "ticks_total"));
              exit 1
            end;
            if r.Serve.completed <> int_of_float (num "completed") then begin
              Format.eprintf "SESSION-COMPLETION MISMATCH: %s: completed %d, baseline %d@." dname
                r.Serve.completed
                (int_of_float (num "completed"));
              exit 1
            end;
            if sr.Session.restarts_total > int_of_float (num "restarts_ceiling") then begin
              Format.eprintf "SESSION-RESTART REGRESSION: %s: %d restarts exceed ceiling %d@."
                dname sr.Session.restarts_total
                (int_of_float (num "restarts_ceiling"));
              exit 1
            end;
            let max_fraction =
              List.fold_left
                (fun acc (s : Session.session_stats) ->
                  Float.max acc s.Session.median_affected_fraction)
                0.0 sr.Session.per_session
            in
            let ceiling = num "median_affected_fraction_ceiling" in
            if max_fraction > ceiling then begin
              Format.eprintf
                "AFFECTED-FRACTION REGRESSION: %s: median affected fraction %.4f exceeds \
                 ceiling %.4f (incremental updates are re-eliminating too much)@."
                dname max_fraction ceiling;
              exit 1
            end;
            Format.printf
              "session baseline ok: %s ticks %d completed %d restarts %d <= %d affected %.4f <= %.4f@."
              dname sr.Session.ticks_total r.Serve.completed sr.Session.restarts_total
              (int_of_float (num "restarts_ceiling"))
              max_fraction ceiling)
      baseline
  in
  let term =
    Term.(const run $ dataset $ seed_flag $ jobs_flag $ opt_level_flag $ steps $ tenants
          $ period_us $ solves $ window $ max_sessions $ idle_timeout_ms $ queue $ json_flag
          $ baseline $ trace_flag $ report_flag)
  in
  Cmd.v
    (Cmd.info "sessions"
       ~doc:"Replay streamed pose-graph missions as per-tenant sessions through the serving \
             runtime: each tick folds one measurement delta into the session's incremental \
             smoother and is charged the affected re-elimination work on the shared compiled \
             template program.")
    term

(* ---------------- chaos ---------------- *)

let chaos_cmd =
  let module FC = Orianna_fault.Fleet_chaos in
  let module Dispatch = Orianna_serve.Dispatch in
  let apps_flag =
    Arg.(value & opt string "all"
         & info [ "apps" ] ~docv:"APPS"
             ~doc:"Comma-separated application names, or \"all\" for every registered app.")
  in
  let runs =
    Arg.(value & opt int FC.default_config.FC.runs
         & info [ "runs" ] ~docv:"N" ~doc:"Monte-Carlo serving runs (one chaos seed each).")
  in
  let requests =
    Arg.(value & opt int FC.default_config.FC.requests
         & info [ "requests" ] ~docv:"N" ~doc:"Trace length per run.")
  in
  let intensity =
    Arg.(value & opt float FC.default_config.FC.intensity
         & info [ "intensity" ] ~docv:"RATE"
             ~doc:"Target steady-state per-instance unavailability (chaos knob).")
  in
  let mttr =
    Arg.(value & opt float FC.default_config.FC.mttr_s
         & info [ "mttr" ] ~docv:"S" ~doc:"Mean time to restart a crashed instance, seconds.")
  in
  let retries =
    Arg.(value & opt int FC.default_config.FC.max_retries
         & info [ "retries" ] ~docv:"N" ~doc:"Retry budget per recovered request copy.")
  in
  let hedge =
    Arg.(value & flag & info [ "hedge" ] ~doc:"Hedge near-deadline retries.")
  in
  let instances =
    Arg.(value & opt int FC.default_config.FC.instances
         & info [ "instances" ] ~docv:"N" ~doc:"Accelerator fleet size.")
  in
  let policy =
    Arg.(value
         & opt (enum [ ("fifo", Dispatch.Fifo); ("edf", Dispatch.Edf); ("least-loaded", Dispatch.Least_loaded) ])
             FC.default_config.FC.policy
         & info [ "policy" ] ~doc:"Dispatch policy: fifo, edf or least-loaded.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the campaign summary as JSON. The payload contains no timings, so it \
                   diffs byte-for-byte across job counts.")
  in
  let run apps_spec seed jobs opt_level runs requests intensity mttr retries hedge instances
      policy json =
    set_jobs jobs;
    let apps =
      if String.lowercase_ascii apps_spec = "all" then
        List.map (fun (a : App.t) -> a.App.name) App.all
      else
        String.split_on_char ',' apps_spec
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.map (fun s -> (App.find s).App.name)
    in
    if apps = [] then begin
      Format.eprintf "no applications selected@.";
      exit 2
    end;
    let config =
      {
        FC.default_config with
        FC.runs;
        requests;
        apps;
        intensity;
        mttr_s = mttr;
        max_retries = retries;
        hedge;
        instances;
        policy;
        opt_level;
      }
    in
    let summary = FC.run ~config ~rng:(Rng.of_int seed) () in
    if json then
      print_endline
        (Orianna_obs.Json.to_string
           (Orianna_obs.Json.Obj
              [
                ( "meta",
                  Orianna_obs.Json.Obj
                    (List.map
                       (fun (k, v) -> (k, Orianna_obs.Json.Str v))
                       (std_meta
                          [
                            ("command", "chaos");
                            ("apps", String.concat "," apps);
                            ("seed", string_of_int seed);
                          ])) );
                ("chaos", FC.json summary);
              ]))
    else print_string (FC.table summary);
    if FC.silent_loss summary then begin
      Format.eprintf
        "SILENT LOSS: at least one run lost an admitted request without a structured outcome@.";
      exit 1
    end
  in
  let term =
    Term.(const run $ apps_flag $ seed_flag $ jobs_flag $ opt_level_flag $ runs $ requests
          $ intensity $ mttr $ retries $ hedge $ instances $ policy $ json_flag)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Monte-Carlo fleet fault-tolerance campaign: seeded serving runs under instance \
             crash/hang/transient/slowdown injection, reporting availability and \
             p99-under-faults; exits non-zero iff any admitted request is lost silently.")
    term

(* ---------------- experiments ---------------- *)

let experiments_cmd =
  let missions = Arg.(value & opt int 30 & info [ "missions" ] ~docv:"N" ~doc:"Missions for Tbl. 5.") in
  let only =
    Arg.(value & opt (some string) None
         & info [ "only" ] ~docv:"ID"
             ~doc:"Run a single experiment: table1, table4, table5, fig13..fig20, breakdown,                    frame-rates, ablations, robust, manhattan, faults, serve.")
  in
  let run missions jobs only trace report =
    set_jobs jobs;
    with_obs ~trace ~report ~meta:[ ("command", "experiments") ] @@ fun () ->
    (match only with
    | None -> Experiments.run_all ~missions ()
    | Some id -> (
        let needs_ctx f =
          let ctx = Experiments.make_context () in
          print_string (f ctx)
        in
        match String.lowercase_ascii id with
        | "table1" -> print_string (Experiments.table1 ())
        | "table4" -> print_string (Experiments.table4 ())
        | "table5" -> print_string (Experiments.table5 ~missions ())
        | "fig13" -> needs_ctx Experiments.fig13
        | "fig14" -> needs_ctx Experiments.fig14
        | "fig15" -> needs_ctx Experiments.fig15
        | "fig16" -> needs_ctx Experiments.fig16
        | "fig17" -> needs_ctx Experiments.fig17
        | "fig18" -> needs_ctx Experiments.fig18
        | "fig19" -> needs_ctx Experiments.fig19
        | "fig20" -> needs_ctx Experiments.fig20
        | "breakdown" -> needs_ctx Experiments.breakdown
        | "frame-rates" | "framerates" -> needs_ctx Experiments.frame_rates
        | "ablations" -> needs_ctx Experiments.ablations
        | "robust" -> print_string (Experiments.extension_robust ())
        | "manhattan" -> print_string (Experiments.extension_manhattan ())
        | "faults" -> print_string (Experiments.extension_faults ~missions:16 ())
        | "serve" -> print_string (Experiments.extension_serve ())
        | other -> Format.eprintf "unknown experiment %S@." other));
    []
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate every table and figure of the evaluation.")
    Term.(const run $ missions $ jobs_flag $ only $ trace_flag $ report_flag)

let () =
  (* ORIANNA_LOG=debug|info enables library logging. *)
  (match Sys.getenv_opt "ORIANNA_LOG" with
  | Some level ->
      Logs.set_reporter (Logs_fmt.reporter ());
      Logs.set_level
        (match String.lowercase_ascii level with
        | "debug" -> Some Logs.Debug
        | "info" -> Some Logs.Info
        | _ -> Some Logs.Warning)
  | None -> ());
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "orianna" ~version:"1.0.0" ~doc:"Accelerator generation for optimization-based robotics." in
  exit (Cmd.eval (Cmd.group ~default info
    [ solve_cmd; compile_cmd; generate_cmd; simulate_cmd; trace_cmd; profile_cmd; image_cmd; mission_cmd; sphere_cmd; g2o_cmd; faults_cmd; serve_cmd; sessions_cmd; chaos_cmd; experiments_cmd ]))
