(* Property-based tests (QCheck) over the core algebraic invariants.

   Each property draws a random seed and rebuilds deterministic inputs
   from it through the library's own RNG — keeping shrinking useful
   (a failing seed reproduces exactly) without generating matrices
   through QCheck itself. *)

open Orianna_linalg
open Orianna_lie
open Orianna_fg
open Orianna_util
module Expr = Orianna_ir.Expr
module Value = Orianna_ir.Value
module Modfg = Orianna_ir.Modfg

let seed_arb = QCheck.(make Gen.(int_range 0 1_000_000) ~print:string_of_int)

let pair_seed = QCheck.(make Gen.(pair (int_range 0 1_000_000) (int_range 2 7)) ~print:QCheck.Print.(pair int int))

(* ---------- SO(3) ---------- *)

let prop_so3_exp_orthonormal =
  QCheck.Test.make ~name:"so3: Exp always lands on SO(3)" ~count:200 seed_arb (fun seed ->
      let rng = Rng.of_int seed in
      let phi = Array.init 3 (fun _ -> Rng.uniform rng ~lo:(-6.0) ~hi:6.0) in
      So3.is_rotation ~eps:1e-7 (So3.exp phi))

let prop_so3_log_exp_identity =
  QCheck.Test.make ~name:"so3: Exp(Log R) = R" ~count:200 seed_arb (fun seed ->
      let r = So3.random (Rng.of_int seed) in
      Mat.equal ~eps:1e-7 r (So3.exp (So3.log r)))

let prop_so3_jr_jrinv_inverse =
  QCheck.Test.make ~name:"so3: Jr(phi) Jr_inv(phi) = I" ~count:200 seed_arb (fun seed ->
      let rng = Rng.of_int seed in
      let phi = Array.init 3 (fun _ -> Rng.uniform rng ~lo:(-2.9) ~hi:2.9) in
      Mat.equal ~eps:1e-7 (Mat.identity 3) (Mat.mul (So3.jr phi) (So3.jr_inv phi)))

let prop_so3_exp_additive_on_axis =
  QCheck.Test.make ~name:"so3: Exp(a v) Exp(b v) = Exp((a+b) v)" ~count:200 seed_arb (fun seed ->
      let rng = Rng.of_int seed in
      let axis = Array.init 3 (fun _ -> Rng.gaussian rng) in
      let n = Vec.norm axis in
      QCheck.assume (n > 1e-3);
      let axis = Vec.scale (1.0 /. n) axis in
      let a = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 and b = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
      Mat.equal ~eps:1e-8
        (Mat.mul (So3.exp (Vec.scale a axis)) (So3.exp (Vec.scale b axis)))
        (So3.exp (Vec.scale (a +. b) axis)))

(* ---------- unified poses ---------- *)

let prop_pose3_group =
  QCheck.Test.make ~name:"pose3: (a+b)-a = b and a+a^-1 = e" ~count:200 seed_arb (fun seed ->
      let rng = Rng.of_int seed in
      let a = Pose3.random rng ~scale:3.0 and b = Pose3.random rng ~scale:3.0 in
      Pose3.equal ~eps:1e-8 b (Pose3.ominus (Pose3.oplus a b) a)
      && Pose3.equal ~eps:1e-8 Pose3.identity (Pose3.oplus a (Pose3.inverse a)))

let prop_pose3_retract_local =
  QCheck.Test.make ~name:"pose3: retract(a, local(a,b)) = b" ~count:200 seed_arb (fun seed ->
      let rng = Rng.of_int seed in
      let a = Pose3.random rng ~scale:3.0 and b = Pose3.random rng ~scale:3.0 in
      Pose3.equal ~eps:1e-7 b (Pose3.retract a (Pose3.local a b)))

let prop_pose3_act_homomorphism =
  QCheck.Test.make ~name:"pose3: (a+b) x = a (b x)" ~count:200 seed_arb (fun seed ->
      let rng = Rng.of_int seed in
      let a = Pose3.random rng ~scale:2.0 and b = Pose3.random rng ~scale:2.0 in
      let x = Array.init 3 (fun _ -> Rng.uniform rng ~lo:(-5.0) ~hi:5.0) in
      Vec.equal ~eps:1e-8 (Pose3.act (Pose3.oplus a b) x) (Pose3.act a (Pose3.act b x)))

let prop_pose2_group =
  QCheck.Test.make ~name:"pose2: (a+b)-a = b" ~count:200 seed_arb (fun seed ->
      let rng = Rng.of_int seed in
      let a = Pose2.random rng ~scale:3.0 and b = Pose2.random rng ~scale:3.0 in
      Pose2.equal ~eps:1e-8 b (Pose2.ominus (Pose2.oplus a b) a))

let prop_se3_conversion_consistent =
  QCheck.Test.make ~name:"convert: pose3 composition = se3 composition" ~count:200 seed_arb
    (fun seed ->
      let rng = Rng.of_int seed in
      let a = Pose3.random rng ~scale:2.0 and b = Pose3.random rng ~scale:2.0 in
      let via_se3 =
        Convert.pose3_of_se3 (Se3.compose (Convert.se3_of_pose3 a) (Convert.se3_of_pose3 b))
      in
      Pose3.equal ~eps:1e-8 via_se3 (Pose3.oplus a b))

(* ---------- postfix ---------- *)

(* Random expression generator over the primitive algebra, seeded. *)
let random_expr rng =
  (* NB: Expr redefines (+)/(-); keep integer arithmetic outside its
     scope. *)
  let rec rot depth =
    let d = depth - 1 in
    if depth <= 0 then if Rng.bool rng then Expr.rot_var "r1" else Expr.rot_var "r2"
    else
      match Rng.int rng 3 with
      | 0 -> Expr.transpose (rot d)
      | 1 -> Expr.Rr (rot d, rot d)
      | _ -> Expr.exp_map (vec d)
  and vec depth =
    let d = depth - 1 in
    if depth <= 0 then
      match Rng.int rng 3 with
      | 0 -> Expr.vec_var "v1"
      | 1 -> Expr.trans_var "x"
      | _ -> Expr.const_vec [| 1.0; 2.0; 3.0 |]
    else
      match Rng.int rng 4 with
      | 0 -> Expr.Vadd (vec d, vec d)
      | 1 -> Expr.Vsub (vec d, vec d)
      | 2 -> Expr.Rv (rot d, vec d)
      | _ -> Expr.log_map (rot d)
  in
  vec (1 + Rng.int rng 3)

let prop_postfix_roundtrip =
  QCheck.Test.make ~name:"expr: of_postfix (to_postfix e) = e" ~count:300 seed_arb (fun seed ->
      let e = random_expr (Rng.of_int seed) in
      Expr.of_postfix (Expr.to_postfix e) = e)

(* ---------- MO-DFG backward vs numeric (randomized shapes) ---------- *)

let prop_modfg_jacobians_numeric =
  QCheck.Test.make ~name:"modfg: backward = numeric jacobian" ~count:40 seed_arb (fun seed ->
      let rng = Rng.of_int seed in
      let e = random_expr rng in
      let values : (Expr.leaf * Value.t) list =
        [
          (Expr.Rot_of "r1", Value.Rot (So3.random rng));
          (Expr.Rot_of "r2", Value.Rot (So3.random rng));
          (Expr.Vec_of "v1", Value.Vc (Array.init 3 (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0)));
          (Expr.Trans_of "x", Value.Vc (Array.init 3 (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0)));
        ]
      in
      let dim_of leaf = Value.type_of (List.assoc leaf values) in
      let lookup leaf = List.assoc leaf values in
      let g = Modfg.build ~dim_of [ e ] in
      (* Guard: Log near the +/-pi boundary has unstable numerics. *)
      let forward = Modfg.eval g ~lookup in
      let boundary =
        Array.exists
          (fun v ->
            match v with
            | Value.Vc x -> Vec.dim x = 3 && Vec.norm x > 2.8
            | Value.Rot _ -> false)
          forward
      in
      QCheck.assume (not boundary);
      let analytic = Modfg.jacobians g ~values:forward in
      let h = 1e-6 in
      List.for_all
        (fun (leaf, jac) ->
          let td = Value.tangent_dim (dim_of leaf) in
          let numeric =
            Mat.init (Modfg.error_dim g) td (fun i k ->
                let perturbed s =
                  let values' =
                    List.map
                      (fun (l, v) ->
                        if l <> leaf then (l, v)
                        else
                          match v with
                          | Value.Rot r ->
                              let d = Vec.create 3 in
                              d.(k) <- s;
                              (l, Value.Rot (Mat.mul r (So3.exp d)))
                          | Value.Vc x ->
                              let x' = Vec.copy x in
                              x'.(k) <- x'.(k) +. s;
                              (l, Value.Vc x'))
                      values
                  in
                  Modfg.error g ~lookup:(fun l -> List.assoc l values')
                in
                ((perturbed h).(i) -. (perturbed (-.h)).(i)) /. (2.0 *. h))
          in
          Mat.equal ~eps:5e-4 numeric jac)
        analytic)

(* ---------- elimination ---------- *)

let random_linear_graph seed nvars =
  let rng = Rng.of_int seed in
  let g = Graph.create () in
  for i = 0 to nvars - 1 do
    Graph.add_variable g (Printf.sprintf "v%d" i)
      (Var.Vector (Array.init 2 (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0)))
  done;
  (* Random priors guarantee full rank; random pairwise links add
     structure. *)
  for i = 0 to nvars - 1 do
    let z = Array.init 2 (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
    Graph.add_factor g
      (Orianna_factors.Motion_factors.state_cost
         ~name:(Printf.sprintf "prior%d" i)
         ~var:(Printf.sprintf "v%d" i) ~target:z ~sigmas:[| 0.5; 0.5 |])
  done;
  for _ = 1 to nvars do
    let a = Rng.int rng nvars and b = Rng.int rng nvars in
    if a <> b then
      Graph.add_factor g
        (Orianna_factors.Motion_factors.smooth
           ~name:(Printf.sprintf "link%d-%d-%d" a b (Rng.int rng 10000))
           ~a:(Printf.sprintf "v%d" a) ~b:(Printf.sprintf "v%d" b) ~dt:0.1 ~d:1 ~sigma:0.7)
  done;
  g

let prop_elimination_matches_dense =
  QCheck.Test.make ~name:"elimination: any ordering matches dense QR" ~count:60 pair_seed
    (fun (seed, nvars) ->
      let g = random_linear_graph seed nvars in
      let lin = Graph.linearize g in
      let dense =
        Linear_system.dense_solve ~var_order:(Graph.variables g) ~dims:(Graph.dims g) lin
      in
      List.for_all
        (fun strategy ->
          let order =
            Ordering.compute strategy ~vars:(Graph.variables g)
              ~factor_scopes:(Graph.factor_scopes g)
          in
          let sparse = Elimination.solve ~order ~dims:(Graph.dims g) lin in
          List.for_all (fun (v, d) -> Vec.equal ~eps:1e-6 (List.assoc v dense) d) sparse)
        [ Ordering.Natural; Ordering.Reverse; Ordering.Min_degree ])

let prop_cholesky_matches_qr =
  QCheck.Test.make ~name:"elimination: Cholesky = QR" ~count:60 pair_seed (fun (seed, nvars) ->
      let g = random_linear_graph seed nvars in
      let lin = Graph.linearize g in
      let order = Graph.variables g in
      let qr = Elimination.solve ~method_:Elimination.Qr ~order ~dims:(Graph.dims g) lin in
      let ch = Elimination.solve ~method_:Elimination.Cholesky ~order ~dims:(Graph.dims g) lin in
      List.for_all (fun (v, d) -> Vec.equal ~eps:1e-5 (List.assoc v qr) d) ch)

let prop_compiled_matches_software =
  QCheck.Test.make ~name:"compiler: program run = software solve" ~count:30 pair_seed
    (fun (seed, nvars) ->
      let g = random_linear_graph seed nvars in
      let program = Orianna_compiler.Compile.compile ~ordering:Ordering.Min_degree g in
      let compiled = Orianna_isa.Program.run program in
      let reference = Optimizer.solve_once ~ordering:Ordering.Min_degree g in
      List.for_all (fun (v, d) -> Vec.equal ~eps:1e-6 (List.assoc v reference) d) compiled)

let prop_encode_roundtrip_semantics =
  QCheck.Test.make ~name:"encode: decode(encode p) runs identically" ~count:30 pair_seed
    (fun (seed, nvars) ->
      let g = random_linear_graph seed nvars in
      let p = Orianna_compiler.Compile.compile g in
      (* Native kernels need a registry; rebuild it from the source
         program as a deployment would. *)
      let registry = Hashtbl.create 16 in
      Array.iter
        (fun (i : Orianna_isa.Instr.t) ->
          match i.Orianna_isa.Instr.op with
          | Orianna_isa.Instr.Kernel k -> Hashtbl.replace registry k.Orianna_isa.Instr.kname k
          | _ -> ())
        p.Orianna_isa.Program.instrs;
      let resolve name = Hashtbl.find registry name in
      let p' = Orianna_isa.Encode.decode ~resolve (Orianna_isa.Encode.encode p) in
      let a = Orianna_isa.Program.run p and b = Orianna_isa.Program.run p' in
      List.for_all (fun (v, d) -> Vec.equal ~eps:1e-12 d (List.assoc v b)) a)

(* ---------- schedule robustness ---------- *)

let all_policies =
  [ Orianna_sim.Schedule.In_order; Orianna_sim.Schedule.Ooo_fine; Orianna_sim.Schedule.Ooo_full ]

let prop_degraded_schedule_invariants =
  (* Stall/latency/makespan accounting must hold even on the worst
     sustainable accelerator (every class at one instance), under
     every issue policy. *)
  QCheck.Test.make ~name:"schedule: invariants hold on degraded accelerators" ~count:30 pair_seed
    (fun (seed, nvars) ->
      let g = random_linear_graph seed nvars in
      let p = Orianna_compiler.Compile.compile g in
      let accel =
        Orianna_hw.Accel.degraded
          (Orianna_hw.Accel.with_extra (Orianna_hw.Accel.base ()) Orianna_hw.Unit_model.Matmul)
      in
      List.for_all
        (fun policy ->
          let r = Orianna_sim.Schedule.run ~accel ~policy p in
          match Orianna_sim.Schedule.check_invariants ~accel p r with
          | Ok () -> true
          | Error _ -> false)
        all_policies)

let prop_jitter_always_detected =
  (* Any positive latency jitter breaks the analytic latency model,
     so the invariant check must flag the run under every policy. *)
  QCheck.Test.make ~name:"schedule: latency jitter never passes invariants" ~count:30 pair_seed
    (fun (seed, nvars) ->
      let g = random_linear_graph seed nvars in
      let p = Orianna_compiler.Compile.compile g in
      let accel = Orianna_hw.Accel.base () in
      let rng = Rng.of_int (seed + 1) in
      let n = Array.length p.Orianna_isa.Program.instrs in
      QCheck.assume (n > 0);
      let target = Rng.int rng n and extra = 1 + Rng.int rng 32 in
      let jitter id = if id = target then extra else 0 in
      List.for_all
        (fun policy ->
          let r = Orianna_sim.Schedule.run ~accel ~policy ~jitter p in
          match Orianna_sim.Schedule.check_invariants ~accel p r with
          | Ok () -> false
          | Error _ -> true)
        all_policies)

(* ---------- incremental smoothing ---------- *)

(* Seed plus a tick count whose shrinker trims the stream: a failure
   reports the shortest diverging prefix of the reproducible stream. *)
let stream_arb =
  QCheck.(
    make
      Gen.(pair (int_range 0 1_000_000) (int_range 3 24))
      ~print:Print.(pair int int)
      ~shrink:Shrink.(pair nil int))

let relin_off = { Smoother.relin_threshold = 0.0; max_relin_passes = 0; window = None }

(* Replay [feed] tick by tick through a relinearization-free smoother
   and check its delta against one batch elimination over the same
   factors at the same linearization points. *)
let smoother_matches_batch ~eps (g : Graph.t) feed =
  let sm = Smoother.create ~params:relin_off () in
  feed sm;
  let order = Smoother.live_variables sm in
  let batch = Elimination.solve ~order ~dims:(Graph.dims g) (Graph.linearize g) in
  List.for_all (fun v -> Vec.equal ~eps (List.assoc v batch) (Smoother.delta sm v)) order

let prop_smoother_pose3_matches_batch =
  QCheck.Test.make ~name:"smoother: Pose3 chain+loops incremental = batch elimination" ~count:40
    stream_arb (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let g = Graph.create () in
      let vname i = Printf.sprintf "x%d" i in
      let poses = Array.init n (fun _ -> Pose3.random rng ~scale:1.0) in
      let ticks = Array.make n [] in
      let pose_factor = Orianna_factors.Pose_factors.between3 in
      ticks.(0) <-
        [
          Orianna_factors.Pose_factors.prior3 ~name:"p0" ~var:(vname 0) ~z:poses.(0) ~sigma:0.1;
        ];
      for i = 1 to n - 1 do
        let z = Pose3.retract (Pose3.ominus poses.(i) poses.(i - 1))
                  (Array.init 6 (fun _ -> Rng.uniform rng ~lo:(-0.05) ~hi:0.05)) in
        ticks.(i) <-
          [ pose_factor ~name:(Printf.sprintf "o%d" i) ~a:(vname (i - 1)) ~b:(vname i) ~z ~sigma:0.2 ];
        (* A loop closure back to a random earlier pose, now and then. *)
        if i >= 2 && Rng.int rng 3 = 0 then begin
          let a = Rng.int rng (i - 1) in
          let z = Pose3.ominus poses.(i) poses.(a) in
          ticks.(i) <-
            ticks.(i)
            @ [ pose_factor ~name:(Printf.sprintf "c%d-%d" a i) ~a:(vname a) ~b:(vname i) ~z ~sigma:0.3 ]
        end
      done;
      for i = 0 to n - 1 do
        Graph.add_variable g (vname i) (Var.Pose3 poses.(i));
        List.iter (Graph.add_factor g) ticks.(i)
      done;
      smoother_matches_batch ~eps:1e-9 g (fun sm ->
          for i = 0 to n - 1 do
            Smoother.add_variable sm (vname i) (Var.Pose3 poses.(i));
            List.iter (Smoother.add_factor sm) ticks.(i);
            Smoother.update sm
          done))

let prop_smoother_g2o_matches_batch =
  QCheck.Test.make ~name:"smoother: g2o-driven stream incremental = batch elimination" ~count:25
    stream_arb (fun (seed, n) ->
      let module Stream = Orianna_apps.Stream in
      let module Datasets = Orianna_apps.Datasets in
      let s =
        Stream.manhattan
          ~cfg:{ Datasets.default_config with Datasets.steps = n; seed = 1 + seed }
          ()
      in
      let g = Stream.prefix_graph s ~n:(Stream.length s) in
      smoother_matches_batch ~eps:1e-9 g (fun sm ->
          Array.iter
            (fun tk ->
              ignore (Stream.apply_tick sm tk);
              Smoother.update sm)
            s.Stream.ticks))

let prop_robust_weight_bounded =
  QCheck.Test.make ~name:"robust: weights in [0,1], 1 at zero residual" ~count:200
    QCheck.(make Gen.(pair (float_bound_exclusive 50.0) (float_range 0.1 10.0))
              ~print:QCheck.Print.(pair string_of_float string_of_float))
    (fun (e, k) ->
      List.for_all
        (fun loss ->
          let w = Robust.weight loss e in
          w >= 0.0 && w <= 1.0 && Robust.weight loss 0.0 = 1.0)
        [ Robust.Huber k; Robust.Cauchy k; Robust.Tukey k ])

let () =
  let suite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_so3_exp_orthonormal;
        prop_so3_log_exp_identity;
        prop_so3_jr_jrinv_inverse;
        prop_so3_exp_additive_on_axis;
        prop_pose3_group;
        prop_pose3_retract_local;
        prop_pose3_act_homomorphism;
        prop_pose2_group;
        prop_se3_conversion_consistent;
        prop_postfix_roundtrip;
        prop_modfg_jacobians_numeric;
        prop_elimination_matches_dense;
        prop_cholesky_matches_qr;
        prop_compiled_matches_software;
        prop_encode_roundtrip_semantics;
        prop_degraded_schedule_invariants;
        prop_jitter_always_detected;
        prop_smoother_pose3_matches_batch;
        prop_smoother_g2o_matches_batch;
        prop_robust_weight_bounded;
      ]
  in
  Alcotest.run "properties" [ ("qcheck", suite) ]
