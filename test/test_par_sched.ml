(* Property & differential suite for the work-stealing scheduler.

   The pool's contract is that stealing is invisible: for any job
   count, chunk hint, per-item cost skew and steal schedule, every
   combinator returns exactly what the sequential map returns, and a
   failing item raises exactly what the sequential map raises.  The
   QCheck properties drive those dimensions directly — including
   forcing adversarial steal orders through the [Pool.Testing] hooks —
   and the differential tests replay all four production fan-out sites
   (generate / faults / chaos / sessions) at j1 vs j4, comparing the
   full JSON reports byte-for-byte via [Util_jdiff].

   Two scheduler-quality assertions ride along: the [Gap]
   decomposition must account for the measured scaling gap within 1%,
   and a pathologically skewed workload (one 100x-cost item) must keep
   the idle fraction under 15% when enough cores exist to measure it. *)

open Orianna
open Orianna_hw
open Orianna_util
open Orianna_apps
module Pool = Orianna_par.Pool
module Gap = Orianna_par.Gap
module Compile = Orianna_compiler.Compile
module Campaign = Orianna_fault.Campaign
module Fleet_chaos = Orianna_fault.Fleet_chaos
module Obs = Orianna_obs.Obs

let with_jobs jobs f =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs saved) f

let with_sched ?order ?chunk f =
  Pool.Testing.set_victim_order order;
  Pool.Testing.set_chunk_override chunk;
  Fun.protect
    ~finally:(fun () ->
      Pool.Testing.set_victim_order None;
      Pool.Testing.set_chunk_override None)
    f

(* ---------- QCheck properties ---------- *)

(* Deterministic busy-work whose result depends on every iteration, so
   a lost or doubled slot can't cancel out. *)
let busy_work i cost =
  let acc = ref (float_of_int i) in
  for k = 1 to cost do
    acc := !acc +. sin (!acc +. float_of_int k)
  done;
  !acc

let prop_refinement =
  QCheck.Test.make
    ~name:"sched: parallel_map = Array.map for any (n, jobs, chunk, cost skew)" ~count:200
    (QCheck.make
       QCheck.Gen.(quad (int_range 0 120) (int_range 1 8) (opt (int_range 1 32)) (int_range 0 100_000))
       ~print:QCheck.Print.(quad int int (option int) int))
    (fun (n, jobs, chunk, skew_seed) ->
      let rng = Rng.of_int skew_seed in
      let costs = Array.init (max 1 n) (fun _ -> Rng.int rng 64) in
      let f i = Printf.sprintf "%d:%.17g" i (busy_work i costs.(i)) in
      let xs = Array.init n Fun.id in
      Pool.parallel_map ~jobs ?chunk f xs = Array.map f xs)

let permutation rng k =
  let a = Array.init k Fun.id in
  for i = k - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let prop_steal_orders =
  QCheck.Test.make
    ~name:"sched: results independent of forced steal order and chunk size" ~count:200
    (QCheck.make
       QCheck.Gen.(quad (int_range 2 200) (int_range 2 8) (int_range 1 7) (int_range 0 100_000))
       ~print:QCheck.Print.(quad int int int int))
    (fun (n, jobs, chunk, order_seed) ->
      let f i = Printf.sprintf "%x" ((i * 2654435761) lxor (i lsl 7)) in
      let xs = Array.init n Fun.id in
      let expected = Array.map f xs in
      (* Every lane gets its own seeded victim permutation, so chunks
         are stolen in arbitrary — but reproducible — orders. *)
      let order ~lane ~lanes = permutation (Rng.of_int (order_seed + (lane * 7919))) lanes in
      with_sched ~order ~chunk (fun () -> Pool.parallel_map ~jobs f xs = expected))

exception Boom of int

let prop_exception_order =
  QCheck.Test.make
    ~name:"sched: first exception in input order survives stealing" ~count:200
    (QCheck.make
       QCheck.Gen.(quad (int_range 1 150) (int_range 1 8) (int_range 1 5) (int_range 0 100_000))
       ~print:QCheck.Print.(quad int int int int))
    (fun (n, jobs, chunk, seed) ->
      let rng = Rng.of_int seed in
      let fails = Array.init n (fun _ -> Rng.int rng 4 = 0) in
      if not (Array.exists Fun.id fails) then fails.(n - 1) <- true;
      let first =
        let rec go i = if fails.(i) then i else go (i + 1) in
        go 0
      in
      let f i = if fails.(i) then raise (Boom i) else i in
      with_sched ~chunk (fun () ->
          match Pool.parallel_map ~jobs f (Array.init n Fun.id) with
          | _ -> false
          | exception Boom i -> i = first))

let prop_nested_sequential =
  QCheck.Test.make
    ~name:"sched: nested parallel_map is sequential and keeps the outer lane" ~count:200
    (QCheck.make
       QCheck.Gen.(pair (int_range 1 16) (int_range 1 8))
       ~print:QCheck.Print.(pair int int))
    (fun (inner_n, jobs) ->
      with_jobs 4 (fun () ->
          let results =
            Pool.parallel_map ~jobs
              (fun i ->
                let lane = Pool.self_lane () in
                let inner =
                  Pool.parallel_map
                    (fun j -> (Pool.self_lane () = lane, (i * 100) + j))
                    (Array.init inner_n Fun.id)
                in
                (* At jobs = 1 the outer map is a plain [Array.map],
                   so the inner map is top-level and may go parallel;
                   the same-lane guarantee applies only inside a real
                   pool job. *)
                (jobs < 2 || Array.for_all fst inner)
                && Array.map snd inner = Array.init inner_n (fun j -> (i * 100) + j))
              (Array.init 8 Fun.id)
          in
          Array.for_all Fun.id results))

let prop_guided_partition =
  QCheck.Test.make
    ~name:"sched: guided_chunk claims partition any range exactly" ~count:500
    (QCheck.make
       QCheck.Gen.(triple (int_range 0 10_000) (int_range 1 8) (int_range 1 64))
       ~print:QCheck.Print.(triple int int int))
    (fun (total, lanes, min_chunk) ->
      let remaining = ref total and ok = ref true in
      while !remaining > 0 && !ok do
        let c = Pool.guided_chunk ~lanes ~min_chunk ~remaining:!remaining in
        if c < 1 || c > !remaining then ok := false else remaining := !remaining - c
      done;
      !ok && !remaining = 0 && Pool.guided_chunk ~lanes ~min_chunk ~remaining:0 = 0)

(* ---------- gap-decomposition accounting ---------- *)

(* The four components of [Gap.decompose] account for the measured gap
   by construction; the residual is the sequential baseline's
   region-vs-busy clock skew.  Locking this at 1% of the workload's
   wall time guards the accounting against scheduler changes. *)
let test_gap_accounting () =
  Obs.set_clock (fun () -> Unix.gettimeofday ());
  Obs.enable ();
  Obs.reset ();
  let xs = Array.init 48 Fun.id in
  let f i = Printf.sprintf "%.17g" (busy_work i 20_000) in
  let timed jobs =
    ignore (Pool.drain_stats ());
    let t0 = Obs.now_s () in
    let r = Pool.parallel_map ~jobs f xs in
    let wall = Obs.now_s () -. t0 in
    (r, wall, Pool.drain_stats ())
  in
  let r1, t_seq, seq = timed 1 in
  let r4, t_par, par = timed 4 in
  Obs.disable ();
  Obs.reset ();
  Alcotest.(check bool) "results identical" true (r1 = r4);
  let g = Gap.decompose ~jobs:4 ~t_seq ~t_par ~seq ~par in
  Alcotest.(check bool) "overhead non-negative" true (g.Gap.overhead_s >= 0.0);
  Alcotest.(check bool) "idle non-negative" true (g.Gap.idle_s >= 0.0);
  let tolerance = 0.01 *. Float.max g.Gap.t_seq_s g.Gap.t_par_s in
  let residual = Float.abs (g.Gap.accounted_s -. g.Gap.gap_s) in
  if residual > tolerance then
    Alcotest.failf
      "gap components do not sum to the gap: gap %.6f s, accounted %.6f s (residual %.6f > \
       tolerance %.6f)"
      g.Gap.gap_s g.Gap.accounted_s residual tolerance;
  (* The report fields the CLI emits come straight from this record. *)
  let keys = List.map fst (Gap.json_fields g) in
  List.iter
    (fun k -> Alcotest.(check bool) (k ^ " present") true (List.mem k keys))
    [ "jobs"; "t_seq_s"; "t_par_s"; "speedup"; "gap_s"; "accounted_s"; "gap_breakdown_s" ]

(* ---------- pathological skew ---------- *)

(* One item costs ~100x the rest and does not sit in slot 0 (slot 0
   runs serially on the caller).  Without stealing, the lane whose
   fixed range contains the heavy item finishes long after the others;
   with chunk-granular stealing the idle fraction must stay small.
   Only asserted where >= 4 real cores exist — on smaller containers
   the lanes timeshare and lane-idle is not measurable. *)
let test_skew_idle_fraction () =
  Obs.set_clock (fun () -> Unix.gettimeofday ());
  Obs.enable ();
  Obs.reset ();
  ignore (Pool.drain_stats ());
  let n = 513 and heavy = 137 in
  let cost i = if i = heavy then 400_000 else 4_000 in
  let f i = busy_work i (cost i) in
  let out = Pool.parallel_map ~jobs:4 f (Array.init n Fun.id) in
  let records = Pool.drain_stats () in
  Obs.disable ();
  Obs.reset ();
  Alcotest.(check bool) "results identical to sequential" true
    (out = Array.init n (fun i -> f i));
  match records with
  | [ r ] ->
      let lanes = float_of_int r.Pool.rjobs in
      let region = r.Pool.done_s -. r.Pool.submit_s in
      let busy =
        Array.fold_left (fun acc (ls : Pool.lane_stats) -> acc +. ls.Pool.busy_s) 0.0 r.Pool.lanes
      in
      let steals =
        Array.fold_left (fun acc (ls : Pool.lane_stats) -> acc + ls.Pool.steals) 0 r.Pool.lanes
      in
      let idle_fraction =
        if region <= 0.0 then 0.0
        else Float.max 0.0 ((lanes *. region) -. busy) /. (lanes *. region)
      in
      Printf.printf "skew workload: idle fraction %.1f%%, %d chunks stolen\n%!"
        (100.0 *. idle_fraction) steals;
      if Domain.recommended_domain_count () >= 4 then
        Alcotest.(check bool)
          (Printf.sprintf "idle fraction %.3f < 0.15 under 100x skew" idle_fraction)
          true (idle_fraction < 0.15)
      else
        Printf.printf "(< 4 cores: idle-fraction floor not asserted)\n%!"
  | rs -> Alcotest.failf "expected 1 run record, got %d" (List.length rs)

(* ---------- j1-vs-j4 determinism on the production fan-out sites ---------- *)

let test_jdiff_generate () =
  let report jobs =
    with_jobs jobs (fun () ->
        let frame = Pipeline.frame App.mobile_robot ~seed:11 in
        Dse.result_json (Pipeline.generate frame.Pipeline.program))
  in
  Util_jdiff.check_identical ~what:"generate --json" (report 1) (report 4)

let test_jdiff_faults () =
  let report jobs =
    with_jobs jobs (fun () ->
        let graphs = App.mobile_robot.App.graphs (Rng.of_int 7) in
        let program = Compile.compile_application graphs in
        let accel = Accel.with_extra (Accel.base ()) Unit_model.Matmul in
        Campaign.json
          (Campaign.run
             ~config:{ Campaign.default_config with Campaign.missions = 24 }
             ~rng:(Rng.of_int 42) ~graphs ~program ~accel ()))
  in
  let j1 = report 1 in
  Util_jdiff.check_identical ~what:"faults --json" j1 (report 4);
  (* And under an adversarial schedule: reversed victim order with
     singleton chunks maximizes cross-lane stealing. *)
  let forced =
    with_sched
      ~order:(fun ~lane:_ ~lanes -> Array.init lanes (fun i -> lanes - 1 - i))
      ~chunk:1
      (fun () -> report 4)
  in
  Util_jdiff.check_identical ~what:"faults --json (forced steal order)" j1 forced

let test_jdiff_chaos () =
  let report jobs =
    with_jobs jobs (fun () ->
        let config =
          {
            Fleet_chaos.default_config with
            Fleet_chaos.runs = 6;
            requests = 60;
            apps = [ App.mobile_robot.App.name ];
          }
        in
        Fleet_chaos.json (Fleet_chaos.run ~config ~rng:(Rng.of_int 5) ()))
  in
  Util_jdiff.check_identical ~what:"chaos --json" (report 1) (report 4)

let test_jdiff_sessions () =
  let module Serve = Orianna_serve.Serve in
  let module Session = Orianna_serve.Session in
  let module Request = Orianna_serve.Request in
  let module Stream = Orianna_apps.Stream in
  let module Datasets = Orianna_apps.Datasets in
  let report jobs =
    with_jobs jobs (fun () ->
        let stream =
          Stream.manhattan ~cfg:{ Datasets.default_config with Datasets.steps = 24; seed = 11 } ()
        in
        let period_s = 200e-6 in
        let missions =
          List.init 2 (fun mid ->
              {
                Session.mid;
                stream;
                start_s = float_of_int mid *. period_s /. 2.0;
                period_s;
                priority = Request.Normal;
                deadline_slack_s = 50e-3;
              })
        in
        let sessions = Session.create ~params:Session.default_params ~opt_level:1 ~missions () in
        Serve.report_json (Serve.run ~config:Serve.default_config ~sessions ~trace:[] ()))
  in
  Util_jdiff.check_identical ~what:"sessions --json" (report 1) (report 4)

let () =
  Alcotest.run "par_sched"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_refinement;
          QCheck_alcotest.to_alcotest prop_steal_orders;
          QCheck_alcotest.to_alcotest prop_exception_order;
          QCheck_alcotest.to_alcotest prop_nested_sequential;
          QCheck_alcotest.to_alcotest prop_guided_partition;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "gap decomposition sums to the measured gap" `Quick
            test_gap_accounting;
          Alcotest.test_case "100x skew: idle fraction bounded by stealing" `Quick
            test_skew_idle_fraction;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "generate JSON identical at j1/j4" `Quick test_jdiff_generate;
          Alcotest.test_case "faults JSON identical at j1/j4 and forced steals" `Quick
            test_jdiff_faults;
          Alcotest.test_case "chaos JSON identical at j1/j4" `Quick test_jdiff_chaos;
          Alcotest.test_case "sessions JSON identical at j1/j4" `Quick test_jdiff_sessions;
        ] );
    ]
