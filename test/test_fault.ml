(* Fault injection, detection and recovery: checksum coverage, the
   structured deadlock, optimizer guards, and campaign determinism. *)

open Orianna_fg
open Orianna_factors
open Orianna_isa
open Orianna_hw
open Orianna_sim
open Orianna_util
module Compile = Orianna_compiler.Compile
module Fault = Orianna_fault.Fault
module Campaign = Orianna_fault.Campaign

let small_graph () =
  let g = Graph.create () in
  Graph.add_variable g "x" (Var.Vector [| 1.0; 2.0 |]);
  Graph.add_variable g "y" (Var.Vector [| 0.0; 0.0 |]);
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"px" ~var:"x" ~target:[| 0.0; 0.0 |] ~sigmas:[| 1.0; 1.0 |]);
  Graph.add_factor g (Motion_factors.smooth ~name:"s" ~a:"x" ~b:"y" ~dt:0.0 ~d:1 ~sigma:1.0);
  g

(* ---------- checksums ---------- *)

let test_crc32_check_value () =
  (* The standard CRC-32/IEEE check value. *)
  Alcotest.(check int) "crc32(123456789)" 0xCBF43926 (Checksum.crc32 "123456789");
  Alcotest.(check int) "crc32 of empty" 0 (Checksum.crc32 "")

let test_checksums_catch_every_single_bit () =
  (* CRC-32 and Fletcher-32 both guarantee detection of any
     single-bit corruption: exhaustively flip every bit. *)
  let data = "ORIA fault detection coverage probe \x00\x01\xfe\xff" in
  let c0 = Checksum.crc32 data and f0 = Checksum.fletcher32 data in
  for bit = 0 to (8 * String.length data) - 1 do
    let corrupted = Fault.flip_bit_in_string data bit in
    if Checksum.crc32 corrupted = c0 then Alcotest.failf "crc32 missed bit %d" bit;
    if Checksum.fletcher32 corrupted = f0 then Alcotest.failf "fletcher32 missed bit %d" bit
  done

let test_image_single_bit_always_detected () =
  (* Flip every bit of a real checksummed instruction image: the
     fetch-path verifier must reject every corruption. *)
  let p = Compile.compile (small_graph ()) in
  let image = Encode.encode_checksummed p in
  (match Encode.verify image with
  | Ok payload -> Alcotest.(check string) "payload strips trailer" (Encode.encode p) payload
  | Error msg -> Alcotest.failf "pristine image rejected: %s" msg);
  for bit = 0 to (8 * String.length image) - 1 do
    match Encode.verify (Fault.flip_bit_in_string image bit) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "bit %d escaped the trailer check" bit
  done

let test_decode_checksummed_roundtrip () =
  let p = Compile.compile (small_graph ()) in
  (* Native kernels need a registry, rebuilt from the source program
     the way a deployment binds fixed-function blocks by name. *)
  let registry = Hashtbl.create 16 in
  Array.iter
    (fun (i : Instr.t) ->
      match i.Instr.op with
      | Instr.Kernel k -> Hashtbl.replace registry k.Instr.kname k
      | _ -> ())
    p.Program.instrs;
  let resolve name = Hashtbl.find registry name in
  let p' = Encode.decode_checksummed ~resolve (Encode.encode_checksummed p) in
  let a = Program.run p and b = Program.run p' in
  List.iter
    (fun (v, d) ->
      let d' = List.assoc v b in
      if not (Orianna_linalg.Vec.equal ~eps:1e-12 d d') then Alcotest.failf "output %s differs" v)
    a;
  (* A truncated image must be rejected, not decoded. *)
  let image = Encode.encode_checksummed p in
  match Encode.decode_checksummed (String.sub image 0 (String.length image - 1)) with
  | _ -> Alcotest.fail "truncated image decoded"
  | exception Encode.Decode_error _ -> ()

(* ---------- bit flips ---------- *)

let test_flip_bit_f64_involution () =
  let rng = Rng.of_int 11 in
  for _ = 1 to 200 do
    let x = Rng.uniform rng ~lo:(-1e6) ~hi:1e6 in
    let bit = Rng.int rng 64 in
    let y = Fault.flip_bit_f64 x bit in
    if Int64.bits_of_float y = Int64.bits_of_float x then
      Alcotest.failf "bit %d flip left %h unchanged" bit x;
    Alcotest.(check (float 0.0)) "involution" x (Fault.flip_bit_f64 y bit)
  done

(* ---------- structured deadlock ---------- *)

let test_deadlock_is_structured () =
  let p = Compile.compile (small_graph ()) in
  let used = Unit_model.class_of_op p.Program.instrs.(0).Instr.op in
  let base = Accel.base () in
  let broken =
    {
      base with
      Accel.name = "broken";
      Accel.counts =
        List.map (fun (c, n) -> if c = used then (c, 0) else (c, n)) base.Accel.counts;
    }
  in
  match Schedule.run ~accel:broken ~policy:Schedule.Ooo_full p with
  | _ -> Alcotest.fail "expected Schedule.Deadlock"
  | exception Schedule.Deadlock { cycle; stuck; occupancy } ->
      Alcotest.(check bool) "cycle non-negative" true (cycle >= 0);
      Alcotest.(check bool) "stuck instructions reported" true (stuck <> []);
      Alcotest.(check bool) "stuck ids valid" true
        (List.for_all (fun i -> i >= 0 && i < Program.length p) stuck);
      Alcotest.(check bool) "occupancy covers the dead class" true
        (List.mem_assoc used occupancy)

(* ---------- optimizer guards ---------- *)

let test_optimizer_nan_guard () =
  let g = small_graph () in
  Graph.set_value g "x" (Var.Vector [| Float.nan; 0.0 |]);
  let report = Optimizer.optimize g in
  Alcotest.(check bool) "not converged" false report.Optimizer.converged;
  (match report.Optimizer.reason with
  | Some _ -> ()
  | None -> Alcotest.fail "no reason reported");
  Alcotest.(check int) "stopped immediately" 0 report.Optimizer.iterations

let test_optimizer_clean_run_has_no_reason_change () =
  (* The guards must not perturb a healthy solve. *)
  let g = small_graph () in
  let report = Optimizer.optimize g in
  Alcotest.(check bool) "converged" true report.Optimizer.converged;
  Alcotest.(check bool) "final error finite" true (Float.is_finite report.Optimizer.final_error)

(* ---------- degraded accelerators ---------- *)

let test_with_masked () =
  let base = Accel.base () in
  Alcotest.(check bool) "last instance cannot be masked" true
    (Accel.with_masked base Unit_model.Matmul = None);
  let bigger = Accel.with_extra base Unit_model.Matmul in
  match Accel.with_masked bigger Unit_model.Matmul with
  | None -> Alcotest.fail "masking with a spare instance failed"
  | Some degraded ->
      Alcotest.(check int) "back to one instance" 1 (Accel.count degraded Unit_model.Matmul)

let test_degraded_minimal () =
  let big =
    List.fold_left Accel.with_extra (Accel.base ())
      [ Unit_model.Matmul; Unit_model.Matmul; Unit_model.Qr_unit; Unit_model.Dma ]
  in
  let d = Accel.degraded big in
  List.iter
    (fun (cls, n) ->
      Alcotest.(check int) (Unit_model.class_name cls ^ " reduced to 1") 1 n)
    d.Accel.counts

(* ---------- campaign ---------- *)

let campaign_input () =
  let g = small_graph () in
  let p = Compile.compile g in
  (["small", g], p, Accel.with_extra (Accel.base ()) Unit_model.Matmul)

let test_campaign_no_escapes () =
  let graphs, program, accel = campaign_input () in
  let s = Campaign.run ~rng:(Rng.of_int 42) ~graphs ~program ~accel () in
  Alcotest.(check bool) "no escapes" false (Campaign.escaped s);
  Alcotest.(check int) "all missions accounted" Campaign.default_config.Campaign.missions
    s.Campaign.totals.Campaign.injected;
  Alcotest.(check int) "events in mission order" Campaign.default_config.Campaign.missions
    (List.length s.Campaign.events);
  (* Per-class rows tie out against the totals. *)
  let sum f = List.fold_left (fun acc (_, cs) -> acc + f cs) 0 s.Campaign.per_class in
  Alcotest.(check int) "injected ties out" s.Campaign.totals.Campaign.injected
    (sum (fun (cs : Campaign.class_stats) -> cs.Campaign.injected));
  Alcotest.(check int) "recovered ties out" s.Campaign.totals.Campaign.recovered
    (sum (fun (cs : Campaign.class_stats) -> cs.Campaign.recovered))

let test_campaign_deterministic () =
  let run () =
    let graphs, program, accel = campaign_input () in
    Campaign.run ~rng:(Rng.of_int 7) ~graphs ~program ~accel ()
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "summaries identical" true (a = b);
  let c =
    let graphs, program, accel = campaign_input () in
    Campaign.run ~rng:(Rng.of_int 8) ~graphs ~program ~accel ()
  in
  Alcotest.(check bool) "different seed differs" true (a.Campaign.events <> c.Campaign.events)

let () =
  Alcotest.run "fault"
    [
      ( "checksum",
        [
          Alcotest.test_case "crc32 check value" `Quick test_crc32_check_value;
          Alcotest.test_case "single-bit coverage" `Quick test_checksums_catch_every_single_bit;
          Alcotest.test_case "image single-bit detected" `Quick test_image_single_bit_always_detected;
          Alcotest.test_case "checksummed roundtrip" `Quick test_decode_checksummed_roundtrip;
        ] );
      ( "model",
        [
          Alcotest.test_case "flip_bit_f64 involution" `Quick test_flip_bit_f64_involution;
          Alcotest.test_case "deadlock structured" `Quick test_deadlock_is_structured;
          Alcotest.test_case "optimizer nan guard" `Quick test_optimizer_nan_guard;
          Alcotest.test_case "optimizer clean run" `Quick test_optimizer_clean_run_has_no_reason_change;
          Alcotest.test_case "with_masked" `Quick test_with_masked;
          Alcotest.test_case "degraded minimal" `Quick test_degraded_minimal;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "no escapes" `Quick test_campaign_no_escapes;
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
        ] );
    ]
