open Orianna_linalg
open Orianna_isa
open Orianna_util
module Compile = Orianna_compiler.Compile
module App = Orianna_apps.App

(* A symbolic-only program (no native kernels): the sphere-style pose
   graph compiles purely through the MO-DFG path. *)
let symbolic_program () =
  let open Orianna_fg in
  let open Orianna_factors in
  let open Orianna_lie in
  let g = Graph.create () in
  let rng = Rng.of_int 8 in
  let p0 = Pose3.random rng ~scale:1.0 in
  let p1 = Pose3.random rng ~scale:1.0 in
  Graph.add_variable g "x0" (Var.Pose3 p0);
  Graph.add_variable g "x1" (Var.Pose3 p1);
  Graph.add_factor g (Pose_factors.prior3 ~name:"prior" ~var:"x0" ~z:p0 ~sigma:0.01);
  Graph.add_factor g
    (Pose_factors.between3 ~name:"odo" ~a:"x0" ~b:"x1" ~z:(Pose3.ominus p1 p0) ~sigma:0.05);
  Graph.add_factor g (Pose_factors.gps3 ~name:"gps" ~var:"x1" ~z:(Pose3.translation p1) ~sigma:0.1);
  Compile.compile g

(* A program with native kernels (camera factors etc.). *)
let kernel_program () = Compile.compile_application (App.quadrotor.App.graphs (Rng.of_int 4))

let test_encode_roundtrip_structure () =
  let p = symbolic_program () in
  let p' = Encode.decode (Encode.encode p) in
  Alcotest.(check int) "length" (Program.length p) (Program.length p');
  Alcotest.(check bool) "outputs" true (p.Program.outputs = p'.Program.outputs);
  Array.iter2
    (fun (a : Instr.t) (b : Instr.t) ->
      Alcotest.(check string) "opcode" (Instr.opcode_name a.Instr.op) (Instr.opcode_name b.Instr.op);
      Alcotest.(check bool) "srcs" true (a.Instr.srcs = b.Instr.srcs);
      Alcotest.(check bool) "shape" true (a.Instr.rows = b.Instr.rows && a.Instr.cols = b.Instr.cols);
      Alcotest.(check bool) "phase" true (a.Instr.phase = b.Instr.phase))
    p.Program.instrs p'.Program.instrs

let test_encode_roundtrip_semantics () =
  (* The decoded program computes the same deltas. *)
  let p = symbolic_program () in
  let p' = Encode.decode (Encode.encode p) in
  let a = Program.run p and b = Program.run p' in
  List.iter
    (fun (name, va) ->
      if not (Vec.equal ~eps:1e-12 va (List.assoc name b)) then
        Alcotest.failf "solution mismatch at %s" name)
    a

let test_encode_kernel_needs_registry () =
  let p = kernel_program () in
  let names = Encode.kernel_names p in
  Alcotest.(check bool) "has kernels" true (names <> []);
  let encoded = Encode.encode p in
  Alcotest.(check bool) "default registry rejects" true
    (try
       ignore (Encode.decode encoded);
       false
     with Encode.Decode_error _ -> true);
  (* Build a registry from the original program and round-trip. *)
  let registry = Hashtbl.create 16 in
  Array.iter
    (fun (i : Instr.t) ->
      match i.Instr.op with
      | Instr.Kernel k -> Hashtbl.replace registry k.Instr.kname k
      | _ -> ())
    p.Program.instrs;
  let resolve name =
    match Hashtbl.find_opt registry name with
    | Some k -> k
    | None -> raise (Encode.Decode_error ("missing " ^ name))
  in
  let p' = Encode.decode ~resolve encoded in
  let a = Program.run p and b = Program.run p' in
  List.iter
    (fun (name, va) ->
      if not (Vec.equal ~eps:1e-12 va (List.assoc name b)) then
        Alcotest.failf "solution mismatch at %s" name)
    a

let test_encode_rejects_garbage () =
  List.iter
    (fun bad ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (Encode.decode bad);
           false
         with Encode.Decode_error _ -> true))
    [ ""; "XXXX"; "ORIA"; Encode.encode (symbolic_program ()) ^ "junk" ]

let test_encode_compact () =
  (* Sanity on size: well under a naive text dump. *)
  let p = symbolic_program () in
  let bytes = String.length (Encode.encode p) in
  Alcotest.(check bool) (Printf.sprintf "%d bytes for %d instrs" bytes (Program.length p)) true
    (bytes < Program.length p * 200)

(* ---------- buffer occupancy ---------- *)

let test_buffer_occupancy_sane () =
  let p = kernel_program () in
  let accel = Orianna_hw.Accel.base () in
  let r = Orianna_sim.Schedule.run ~accel ~policy:Orianna_sim.Schedule.Ooo_full p in
  let o = Orianna_sim.Buffer_model.analyze p r in
  Alcotest.(check bool) "peak positive" true (o.Orianna_sim.Buffer_model.peak_words > 0);
  Alcotest.(check bool) "peak <= total" true
    (o.Orianna_sim.Buffer_model.peak_words <= o.Orianna_sim.Buffer_model.total_words_produced);
  Alcotest.(check bool) "average <= peak" true
    (o.Orianna_sim.Buffer_model.average_words <= float_of_int o.Orianna_sim.Buffer_model.peak_words)

let test_buffer_generated_design_fits () =
  (* The generated design provisions enough BRAM for its working set. *)
  let p = Compile.compile_application (App.mobile_robot.App.graphs (Rng.of_int 5)) in
  let accel = (Orianna.Pipeline.generate p).Orianna_hw.Dse.best in
  let r = Orianna_sim.Schedule.run ~accel ~policy:Orianna_sim.Schedule.Ooo_full p in
  Alcotest.(check bool) "fits" true (Orianna_sim.Buffer_model.fits accel p r)

(* ---------- Program.hash ---------- *)

let test_hash_roundtrip_stable () =
  (* The serving cache's fallback content key must survive the wire:
     hash over the canonical encoding, excluding the debug tag. *)
  let check p =
    let p' = Encode.decode (Encode.encode p) in
    Alcotest.(check int32) "hash survives encode/decode" (Program.hash p) (Program.hash p')
  in
  check (symbolic_program ());
  let p = kernel_program () in
  let registry = Hashtbl.create 16 in
  Array.iter
    (fun (i : Instr.t) ->
      match i.Instr.op with
      | Instr.Kernel k -> Hashtbl.replace registry k.Instr.kname k
      | _ -> ())
    p.Program.instrs;
  let resolve name =
    match Hashtbl.find_opt registry name with
    | Some k -> k
    | None -> raise (Encode.Decode_error ("missing " ^ name))
  in
  let p' = Encode.decode ~resolve (Encode.encode p) in
  Alcotest.(check int32) "kernel program too" (Program.hash p) (Program.hash p')

let test_hash_deterministic_and_discriminating () =
  let a = symbolic_program () and b = kernel_program () in
  Alcotest.(check int32) "recompile hashes identically" (Program.hash (symbolic_program ()))
    (Program.hash a);
  Alcotest.(check bool) "different programs differ" true (Program.hash a <> Program.hash b)

let test_buffer_spill_monotone () =
  let p = symbolic_program () in
  let accel = Orianna_hw.Accel.base () in
  let r = Orianna_sim.Schedule.run ~accel ~policy:Orianna_sim.Schedule.Ooo_full p in
  let s0 = Orianna_sim.Buffer_model.spill_words ~capacity:0 p r in
  let s10 = Orianna_sim.Buffer_model.spill_words ~capacity:10 p r in
  let huge = Orianna_sim.Buffer_model.spill_words ~capacity:1_000_000 p r in
  Alcotest.(check bool) "monotone" true (s0 >= s10 && s10 >= huge);
  Alcotest.(check int) "no spill when huge" 0 huge;
  Alcotest.(check bool) "spill when zero" true (s0 > 0)

let () =
  Alcotest.run "isa"
    [
      ( "encode",
        [
          Alcotest.test_case "roundtrip structure" `Quick test_encode_roundtrip_structure;
          Alcotest.test_case "roundtrip semantics" `Quick test_encode_roundtrip_semantics;
          Alcotest.test_case "kernel registry" `Quick test_encode_kernel_needs_registry;
          Alcotest.test_case "rejects garbage" `Quick test_encode_rejects_garbage;
          Alcotest.test_case "compact" `Quick test_encode_compact;
          Alcotest.test_case "hash roundtrip" `Quick test_hash_roundtrip_stable;
          Alcotest.test_case "hash discriminates" `Quick test_hash_deterministic_and_discriminating;
        ] );
      ( "buffer",
        [
          Alcotest.test_case "occupancy sane" `Quick test_buffer_occupancy_sane;
          Alcotest.test_case "generated fits" `Slow test_buffer_generated_design_fits;
          Alcotest.test_case "spill monotone" `Quick test_buffer_spill_monotone;
        ] );
    ]
