open Orianna_linalg
open Orianna_fg
open Orianna_apps
open Orianna_util

(* ---------- sphere benchmark ---------- *)

let small_sphere =
  {
    Sphere.default_config with
    Sphere.rings = 4;
    poses_per_ring = 10;
    seed = 5;
  }

let test_sphere_dataset_shape () =
  let ds = Sphere.generate small_sphere in
  Alcotest.(check int) "poses" 40 (Array.length ds.Sphere.truth);
  Alcotest.(check int) "odometry edges" 39 (Array.length ds.Sphere.odometry);
  Alcotest.(check int) "loops" 30 (Array.length ds.Sphere.loops);
  (* Positions actually lie on the sphere. *)
  Array.iter
    (fun p ->
      let r = Vec.norm (Orianna_lie.Pose3.translation p) in
      Alcotest.(check bool) "on sphere" true (Float.abs (r -. small_sphere.Sphere.radius) < 1e-6))
    ds.Sphere.truth

let test_sphere_initial_drifts () =
  let ds = Sphere.generate small_sphere in
  let e = Sphere.ate ~truth:ds.Sphere.truth ~estimate:ds.Sphere.initial in
  Alcotest.(check bool) "drifted" true (e.Sphere.mean > 0.3);
  Alcotest.(check (float 0.0)) "starts anchored" 0.0 e.Sphere.min

let test_sphere_run_improves_and_matches () =
  let r = Sphere.run ~config:small_sphere () in
  Alcotest.(check bool) "unified improves 10x" true
    (r.Sphere.unified.Sphere.errors.Sphere.mean < r.Sphere.initial_errors.Sphere.mean /. 10.0);
  (* Both representations land on (nearly) the same accuracy. *)
  let u = r.Sphere.unified.Sphere.errors.Sphere.mean in
  let s = r.Sphere.se3.Sphere.errors.Sphere.mean in
  Alcotest.(check bool)
    (Printf.sprintf "accuracy matches (%.4f vs %.4f)" u s)
    true
    (Float.abs (u -. s) < 0.2 *. Float.max u s);
  Alcotest.(check bool) "unified construction cheaper" true (r.Sphere.mac_saving > 0.2)

let test_sphere_ate_mismatch () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Sphere.ate: length mismatch")
    (fun () ->
      ignore
        (Sphere.ate ~truth:[| Orianna_lie.Pose3.identity |] ~estimate:[||]))

let test_sphere_robust_extension () =
  let config = { Sphere.default_config with Sphere.rings = 4; poses_per_ring = 10; seed = 3 } in
  let r = Sphere.run_robust ~config ~outlier_fraction:0.2 () in
  Alcotest.(check bool) "outliers injected" true (r.Sphere.outliers > 0);
  Alcotest.(check bool) "plain degraded" true
    (r.Sphere.plain.Sphere.mean > 5.0 *. r.Sphere.clean.Sphere.mean);
  Alcotest.(check bool) "robust recovers" true
    (r.Sphere.robust.Sphere.mean < 3.0 *. r.Sphere.clean.Sphere.mean)

(* ---------- application graphs ---------- *)

let test_all_apps_build_three_graphs () =
  List.iter
    (fun (a : App.t) ->
      let graphs = a.App.graphs (Rng.of_int 3) in
      Alcotest.(check (list string)) (a.App.name ^ " algorithms")
        [ "localization"; "planning"; "control" ]
        (List.map fst graphs);
      List.iter
        (fun (alg, g) ->
          Alcotest.(check bool) (a.App.name ^ "/" ^ alg ^ " nonempty") true
            (Graph.num_variables g > 0 && Graph.num_factors g > 0))
        graphs)
    App.all

let test_graphs_deterministic_per_seed () =
  List.iter
    (fun (a : App.t) ->
      let g1 = a.App.graphs (Rng.of_int 9) and g2 = a.App.graphs (Rng.of_int 9) in
      List.iter2
        (fun (_, x) (_, y) ->
          Alcotest.(check int) "same factors" (Graph.num_factors x) (Graph.num_factors y);
          Alcotest.(check (float 1e-12)) "same error" (Graph.error x) (Graph.error y))
        g1 g2)
    App.all

let test_table4_dimensions () =
  (* The variable dimensions of the built graphs match Tbl. 4. *)
  let check_app (a : App.t) expected_loc_dim =
    let graphs = a.App.graphs (Rng.of_int 1) in
    let loc = List.assoc "localization" graphs in
    (* First variable of the localization graph is a pose/joint. *)
    let first = List.hd (Graph.variables loc) in
    Alcotest.(check int) (a.App.name ^ " loc dim") expected_loc_dim (Graph.dims loc first)
  in
  check_app App.mobile_robot 3;
  check_app App.manipulator 2;
  check_app App.auto_vehicle 3;
  check_app App.quadrotor 6

let test_solvable_by_software () =
  (* Every graph of every app must be solvable (no underconstrained
     variables, converging GN). *)
  List.iter
    (fun (a : App.t) ->
      List.iter
        (fun (alg, g) ->
          let before = Graph.error g in
          Scenario.solve `Software g;
          let after = Graph.error g in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s improves (%.3g -> %.3g)" a.App.name alg before after)
            true (after <= before +. 1e-9))
        (a.App.graphs (Rng.of_int 11)))
    App.all

let test_mission_solver_agreement () =
  (* The compiled path must reach the same verdicts as the software
     path (the Tbl. 5 claim), spot-checked per app. *)
  List.iter
    (fun (a : App.t) ->
      List.iter
        (fun seed ->
          let sw = a.App.mission ~seed ~solver:`Software in
          let hw = a.App.mission ~seed ~solver:`Compiled in
          Alcotest.(check bool) (Printf.sprintf "%s seed %d" a.App.name seed) sw hw)
        [ 1; 2 ])
    App.all

let test_app_find () =
  Alcotest.(check string) "case insensitive" "Quadrotor" (App.find "quadrotor").App.name;
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (App.find "submarine");
       false
     with Not_found -> true)

(* ---------- g2o format ---------- *)

let sample_g2o = String.concat "\n" [
  "# a tiny 2D pose graph";
  "VERTEX_SE2 0 0.0 0.0 0.0";
  "VERTEX_SE2 1 1.1 0.1 0.05";
  "VERTEX_SE2 2 2.0 -0.1 -0.02";
  "EDGE_SE2 0 1 1.0 0.0 0.0 100 0 0 100 0 400";
  "EDGE_SE2 1 2 1.0 0.0 0.0 100 0 0 100 0 400";
  "EDGE_SE2 0 2 2.0 0.0 0.0 100 0 0 100 0 400";
  "";
]

let test_g2o_parse_2d () =
  let entries = G2o.parse sample_g2o in
  Alcotest.(check int) "entries" 6 (List.length entries);
  match List.hd entries with
  | G2o.Vertex2 (0, p) -> Alcotest.(check (float 1e-12)) "x" 0.0 (Orianna_lie.Pose2.translation p).(0)
  | _ -> Alcotest.fail "first entry"

let test_g2o_solve_2d () =
  let g, report = G2o.solve_file sample_g2o in
  Alcotest.(check bool) "improves" true
    (report.Optimizer.final_error < report.Optimizer.initial_error);
  (* With consistent unit odometry, x2 lands near (2, 0). *)
  match Graph.value g "x2" with
  | Var.Pose2 p ->
      let t = Orianna_lie.Pose2.translation p in
      Alcotest.(check bool) "x2 near (2,0)" true (Float.abs (t.(0) -. 2.0) < 0.05 && Float.abs t.(1) < 0.05)
  | _ -> Alcotest.fail "kind"

let test_g2o_roundtrip_3d () =
  let ds = Sphere.generate small_sphere in
  let entries = G2o.of_sphere ds in
  let reparsed = G2o.parse (G2o.to_string entries) in
  Alcotest.(check int) "entry count" (List.length entries) (List.length reparsed);
  (* Vertices survive the quaternion round trip. *)
  List.iter2
    (fun a b ->
      match (a, b) with
      | G2o.Vertex3 (i, p), G2o.Vertex3 (j, q) ->
          Alcotest.(check int) "id" i j;
          Alcotest.(check bool) "pose" true (Orianna_lie.Pose3.equal ~eps:1e-6 p q)
      | G2o.Edge3 (i1, j1, z1, inf1), G2o.Edge3 (i2, j2, z2, inf2) ->
          Alcotest.(check bool) "edge ids" true (i1 = i2 && j1 = j2);
          Alcotest.(check bool) "edge pose" true (Orianna_lie.Pose3.equal ~eps:1e-6 z1 z2);
          Alcotest.(check bool) "info" true (Vec.equal ~eps:1e-6 inf1 inf2)
      | _ -> Alcotest.fail "entry kind changed")
    entries reparsed

let test_g2o_solves_sphere_export () =
  let ds = Sphere.generate small_sphere in
  let contents = G2o.to_string (G2o.of_sphere ds) in
  let g, report = G2o.solve_file contents in
  Alcotest.(check bool) "solved" true (report.Optimizer.final_error < report.Optimizer.initial_error);
  (* The solved trajectory approaches the (withheld) ground truth. *)
  let errs =
    Array.mapi
      (fun i truth ->
        match Graph.value g (Printf.sprintf "x%d" i) with
        | Var.Pose3 p -> Orianna_lie.Pose3.distance truth p
        | _ -> infinity)
      ds.Sphere.truth
  in
  let init = Sphere.ate ~truth:ds.Sphere.truth ~estimate:ds.Sphere.initial in
  Alcotest.(check bool) "beats initialization 5x" true
    (Stats.mean errs < init.Sphere.mean /. 5.0)

let test_g2o_rejects_malformed () =
  (* Malformed instances of the supported record types still fail hard
     (unknown tags like WOBBLE are tolerated, see below). *)
  List.iter
    (fun bad ->
      Alcotest.(check bool) ("rejects " ^ bad) true
        (try
           ignore (G2o.parse bad);
           false
         with G2o.Parse_error _ -> true))
    [ "VERTEX_SE2 0 1.0"; "EDGE_SE2 0 1 1 2"; "VERTEX_SE3:QUAT 0 0 0 0 0 0 0 0 extra" ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_g2o_tolerates_foreign_records () =
  let contents =
    String.concat "\n"
      [
        "VERTEX_SE2 0 0 0 0";
        "FIX 0";
        "VERTEX_SE2 1 1 0 0";
        "WOBBLE 1 2 3";
        "EDGE_SE2 0 1 1 0 0 100 0 0 100 0 400";
      ]
  in
  let entries, warnings = G2o.parse_verbose contents in
  Alcotest.(check int) "entries" 3 (List.length entries);
  Alcotest.(check (list string))
    "warnings name line and tag"
    [ "line 2: ignored FIX"; "line 4: ignored WOBBLE" ]
    warnings;
  (* parse is parse_verbose minus the warnings. *)
  Alcotest.(check int) "parse agrees" 3 (List.length (G2o.parse contents));
  (* The surviving entries still build a solvable graph. *)
  let g = G2o.to_graph entries in
  Alcotest.(check int) "variables" 2 (Graph.num_variables g)

let test_g2o_errors_carry_line_numbers () =
  let contents = "VERTEX_SE2 0 0 0 0\nEDGE_SE2 0 1 1 2" in
  match G2o.parse contents with
  | _ -> Alcotest.fail "malformed edge accepted"
  | exception G2o.Parse_error msg ->
      Alcotest.(check bool) ("mentions line 2: " ^ msg) true (contains msg "line 2:")

(* ---------- measurement streams ---------- *)

let test_stream_structure () =
  let s = Stream.of_g2o ~name:"tiny" (G2o.parse sample_g2o) in
  Alcotest.(check int) "ticks" 3 (Stream.length s);
  Alcotest.(check int) "variables" 3 (Stream.total_variables s);
  (* The gauge anchor rides tick 0; each edge arrives with its later
     endpoint, so tick 2 carries both edges incident on x2. *)
  Alcotest.(check int) "tick 0 factors" 1 (List.length s.Stream.ticks.(0).Stream.tfactors);
  Alcotest.(check int) "tick 1 factors" 1 (List.length s.Stream.ticks.(1).Stream.tfactors);
  Alcotest.(check int) "tick 2 factors" 2 (List.length s.Stream.ticks.(2).Stream.tfactors);
  let g = Stream.prefix_graph s ~n:3 and gb = G2o.to_graph (G2o.parse sample_g2o) in
  Alcotest.(check int) "prefix vars = batch" (Graph.num_variables gb) (Graph.num_variables g);
  Alcotest.(check int) "prefix factors = batch" (Graph.num_factors gb) (Graph.num_factors g)

let test_stream_rejects_dangling_edge () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Stream.of_g2o ~name:"bad"
            (G2o.parse "VERTEX_SE2 0 0 0 0\nEDGE_SE2 0 7 1 0 0 100 0 0 100 0 400"));
       false
     with Invalid_argument _ -> true)

let gn_params = { Smoother.relin_threshold = 1e-5; max_relin_passes = 10; window = None }

(* The differential harness of the streaming tentpole: replay a stream
   through the incremental smoother and, at a few prefixes, check every
   live estimate against a batch Gauss-Newton solve of the same prefix
   graph. *)
let check_stream_matches_batch_gn name (s : Stream.t) =
  let sm = Smoother.create ~params:gn_params () in
  let len = Stream.length s in
  let prefixes = List.sort_uniq compare [ len / 3; 2 * len / 3; len ] in
  let applied = ref 0 in
  List.iter
    (fun n ->
      for k = !applied to n - 1 do
        ignore (Stream.apply_tick sm s.Stream.ticks.(k));
        Smoother.update sm
      done;
      applied := n;
      let g = Stream.prefix_graph s ~n in
      let report = Optimizer.optimize g in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%d batch converged" name n)
        true report.Optimizer.converged;
      let worst = ref 0.0 in
      List.iter
        (fun v ->
          let d = Vec.norm (Var.local (Graph.value g v) (Smoother.estimate sm v)) in
          if d > !worst then worst := d)
        (Smoother.live_variables sm);
      Alcotest.(check bool)
        (Printf.sprintf "%s prefix %d within 1e-6 (worst %.2e)" name n !worst)
        true (!worst < 1e-6))
    prefixes

let test_stream_manhattan_matches_gn () =
  check_stream_matches_batch_gn "manhattan"
    (Stream.manhattan ~cfg:{ Datasets.default_config with Datasets.steps = 60 } ())

let test_stream_loopy_matches_gn () =
  check_stream_matches_batch_gn "loopy"
    (Stream.loopy ~cfg:{ Stream.default_loopy_config with Stream.laps = 2 } ())

let test_stream_affected_stays_small () =
  (* The incremental claim: on a long mostly-chain stream the median
     re-eliminated set stays below 10% of the live variables. *)
  let s = Stream.manhattan ~cfg:{ Datasets.default_config with Datasets.steps = 150 } () in
  let sm = Smoother.create ~params:gn_params () in
  let fractions = ref [] in
  Array.iter
    (fun tk ->
      ignore (Stream.apply_tick sm tk);
      Smoother.update sm;
      let st = Smoother.stats sm in
      if st.Smoother.total_variables > 20 then
        fractions :=
          (float_of_int st.Smoother.affected_last /. float_of_int st.Smoother.total_variables)
          :: !fractions)
    s.Stream.ticks;
  let med = Stats.median (Array.of_list !fractions) in
  Alcotest.(check bool) (Printf.sprintf "median affected %.1f%%" (100.0 *. med)) true (med <= 0.10)

(* ---------- closed-loop MPC ---------- *)

let test_mpc_converges () =
  let r = Mpc.track_unicycle ~solver:`Software ~e0:[| 0.5; -0.4; 0.3 |] () in
  Alcotest.(check bool)
    (Printf.sprintf "converges (final %.4f)" r.Mpc.final_error)
    true (Mpc.converges r);
  Alcotest.(check bool) "inputs bounded" true (r.Mpc.max_input < 5.0)

let test_mpc_solver_agreement () =
  let run solver = Mpc.track_unicycle ~solver ~e0:[| 0.3; 0.2; -0.1 |] () in
  let sw = run `Software and hw = run `Compiled in
  Alcotest.(check bool) "same final error" true
    (Float.abs (sw.Mpc.final_error -. hw.Mpc.final_error) < 1e-6)

let test_mpc_bad_dim () =
  Alcotest.(check bool) "rejects" true
    (try
       ignore (Mpc.track_unicycle ~solver:`Software ~e0:[| 1.0 |] ());
       false
     with Invalid_argument _ -> true)

(* ---------- manipulator kinematics ---------- *)

let test_manipulator_fk () =
  let l1, l2 = Manipulator.link_lengths in
  (* Straight arm along x. *)
  let ee = Manipulator.forward_kinematics [| 0.0; 0.0 |] in
  Alcotest.(check (float 1e-12)) "x" (l1 +. l2) ee.(0);
  Alcotest.(check (float 1e-12)) "y" 0.0 ee.(1);
  (* Elbow at 90 degrees. *)
  let ee = Manipulator.forward_kinematics [| 0.0; Float.pi /. 2.0 |] in
  Alcotest.(check (float 1e-9)) "x" l1 ee.(0);
  Alcotest.(check (float 1e-9)) "y" l2 ee.(1)

(* ---------- scenario helpers ---------- *)

let test_lerp_states () =
  let states = Scenario.lerp_states ~start:[| 0.0; 0.0 |] ~goal:[| 4.0; 2.0 |] ~steps:4 ~dt:0.5 in
  Alcotest.(check int) "count" 5 (Array.length states);
  Alcotest.(check (float 1e-12)) "start" 0.0 states.(0).(0);
  Alcotest.(check (float 1e-12)) "end x" 4.0 states.(4).(0);
  (* velocity = (goal - start) / total time = (4,2)/2 = (2,1). *)
  Alcotest.(check (float 1e-12)) "vx" 2.0 states.(2).(2);
  Alcotest.(check (float 1e-12)) "vy" 1.0 states.(2).(3)

let test_min_clearance () =
  let obstacles = [ { Orianna_factors.Motion_factors.center = [| 0.0; 0.0 |]; radius = 1.0 } ] in
  let states = [| [| 3.0; 0.0; 0.0; 0.0 |]; [| 1.5; 0.0; 0.0; 0.0 |] |] in
  Alcotest.(check (float 1e-12)) "clearance" 0.5 (Scenario.min_clearance ~states ~obstacles)

let () =
  Alcotest.run "apps"
    [
      ( "sphere",
        [
          Alcotest.test_case "dataset shape" `Quick test_sphere_dataset_shape;
          Alcotest.test_case "initial drifts" `Quick test_sphere_initial_drifts;
          Alcotest.test_case "run improves + matches" `Slow test_sphere_run_improves_and_matches;
          Alcotest.test_case "ate mismatch" `Quick test_sphere_ate_mismatch;
          Alcotest.test_case "robust extension" `Slow test_sphere_robust_extension;
        ] );
      ( "applications",
        [
          Alcotest.test_case "three graphs" `Quick test_all_apps_build_three_graphs;
          Alcotest.test_case "deterministic" `Quick test_graphs_deterministic_per_seed;
          Alcotest.test_case "table4 dims" `Quick test_table4_dimensions;
          Alcotest.test_case "solvable" `Quick test_solvable_by_software;
          Alcotest.test_case "solver agreement" `Slow test_mission_solver_agreement;
          Alcotest.test_case "find" `Quick test_app_find;
        ] );
      ( "g2o",
        [
          Alcotest.test_case "parse 2d" `Quick test_g2o_parse_2d;
          Alcotest.test_case "solve 2d" `Quick test_g2o_solve_2d;
          Alcotest.test_case "roundtrip 3d" `Quick test_g2o_roundtrip_3d;
          Alcotest.test_case "solves sphere export" `Slow test_g2o_solves_sphere_export;
          Alcotest.test_case "rejects malformed" `Quick test_g2o_rejects_malformed;
          Alcotest.test_case "tolerates foreign records" `Quick test_g2o_tolerates_foreign_records;
          Alcotest.test_case "errors carry line numbers" `Quick test_g2o_errors_carry_line_numbers;
        ] );
      ( "stream",
        [
          Alcotest.test_case "structure" `Quick test_stream_structure;
          Alcotest.test_case "dangling edge" `Quick test_stream_rejects_dangling_edge;
          Alcotest.test_case "manhattan matches GN" `Slow test_stream_manhattan_matches_gn;
          Alcotest.test_case "loopy matches GN" `Slow test_stream_loopy_matches_gn;
          Alcotest.test_case "affected stays small" `Slow test_stream_affected_stays_small;
        ] );
      ( "mpc",
        [
          Alcotest.test_case "converges" `Quick test_mpc_converges;
          Alcotest.test_case "solver agreement" `Slow test_mpc_solver_agreement;
          Alcotest.test_case "bad dim" `Quick test_mpc_bad_dim;
        ] );
      ("manipulator", [ Alcotest.test_case "forward kinematics" `Quick test_manipulator_fk ]);
      ( "scenario",
        [
          Alcotest.test_case "lerp states" `Quick test_lerp_states;
          Alcotest.test_case "min clearance" `Quick test_min_clearance;
        ] );
    ]
