(* The serving runtime: compile-cache keying and eviction, request
   conservation under every dispatch policy (QCheck), bit-for-bit
   campaign determinism, shed-on-overload, and rerouting around a
   degraded fleet instance. *)

open Orianna_util
open Orianna_serve
module App = Orianna_apps.App
module Unit_model = Orianna_hw.Unit_model
module Json = Orianna_obs.Json

let apps2 = [ "MobileRobot"; "Manipulator" ]

let trace ?(apps = apps2) ?(shape = Request.Poisson { rate_hz = 20000.0 }) ~seed ~n () =
  Request.generate ~rng:(Rng.of_int seed) ~shape ~apps ~deadline_s:(1e-3, 4e-3) ~n

(* A small fleet and cache keep each campaign's compile + DSE work to
   one or two misses, so the QCheck loop stays fast. *)
let small_config ?(instances = 2) ?(masked = []) ?(policy = Dispatch.Edf) ?(queue_capacity = 32)
    ?(cache_capacity = 4) () =
  { Serve.default_config with instances; masked; policy; queue_capacity; cache_capacity }

(* ---------- cache ---------- *)

let test_structural_key_seed_invariant () =
  (* Different workload seeds perturb values, never structure: the
     whole point of content addressing is that they collide. *)
  let k seed = Cache.structural_key (App.mobile_robot.App.graphs (Rng.of_int seed)) in
  Alcotest.(check bool) "seeds collide" true (k 1 = k 2 && k 2 = k 999);
  let km seed = Cache.structural_key (App.manipulator.App.graphs (Rng.of_int seed)) in
  Alcotest.(check bool) "apps differ" true (k 1 <> km 1)

let test_structural_key_opt_level () =
  (* Effective opt levels are {0, 1, 2, 3}: distinct levels must not
     alias, but levels beyond 3 compile identically to 3 and must
     share its entry. *)
  let k lvl = Cache.structural_key ~opt_level:lvl (App.quadrotor.App.graphs (Rng.of_int 1)) in
  Alcotest.(check bool) "O0 <> O1" true (k 0 <> k 1);
  Alcotest.(check bool) "O1 <> O2" true (k 1 <> k 2);
  Alcotest.(check bool) "O2 <> O3" true (k 2 <> k 3);
  Alcotest.(check bool) "O3 = O4" true (k 3 = k 4);
  Alcotest.(check bool) "O0 = O-1" true (k 0 = k (-1))

let test_cache_counts_and_lru () =
  let compiles = ref 0 in
  let cache = Cache.create ~capacity:2 in
  let fake key =
    ( key,
      fun () ->
        incr compiles;
        let p = Orianna_compiler.Compile.compile_application (App.mobile_robot.App.graphs (Rng.of_int 1)) in
        let budget = Orianna_hw.Resource.zc706 in
        let dse =
          Orianna_hw.Dse.optimize ~budget
            ~evaluate:(fun accel ->
              (Orianna_sim.Schedule.run ~accel ~policy:Orianna_sim.Schedule.Ooo_full p)
                .Orianna_sim.Schedule.seconds)
            ()
        in
        (p, dse) )
  in
  let lookup key = ignore (Cache.find_or_add cache (fst (fake key)) (snd (fake key))) in
  lookup 1l;
  lookup 1l;
  lookup 2l;
  (* key 1 is most recent after this touch; inserting key 3 must evict 2. *)
  lookup 1l;
  lookup 3l;
  Alcotest.(check bool) "evicted the LRU entry" true (Cache.find cache 2l = None);
  Alcotest.(check bool) "kept the recent entry" true (Cache.find cache 1l <> None);
  let s = Cache.stats cache in
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  Alcotest.(check int) "misses" 3 s.Cache.misses;
  Alcotest.(check int) "evictions" 1 s.Cache.evictions;
  Alcotest.(check int) "compile once per miss" 3 !compiles

(* ---------- conservation (QCheck) ---------- *)

let ids l = List.sort_uniq compare l

let check_conserved (t : Request.t list) (r : Serve.report) =
  let completed = List.map (fun c -> c.Serve.request.Request.id) r.Serve.completions in
  let rejected = List.map (fun (req, _) -> req.Request.id) r.Serve.rejections in
  let all = List.map (fun (req : Request.t) -> req.Request.id) t in
  r.Serve.total = List.length t
  && List.length completed + List.length rejected = r.Serve.total
  && List.length (ids completed) = List.length completed
  && List.length (ids rejected) = List.length rejected
  && ids (completed @ rejected) = ids all

let conservation_arb =
  QCheck.(
    make
      Gen.(
        quad (int_range 0 1_000_000) (int_range 0 2) (int_range 1 3) (int_range 2 24))
      ~print:QCheck.Print.(quad int int int int))

let prop_conservation =
  QCheck.Test.make ~name:"serve: drained campaign conserves every request" ~count:8
    conservation_arb (fun (seed, pol, instances, queue_capacity) ->
      let policy = List.nth [ Dispatch.Fifo; Dispatch.Edf; Dispatch.Least_loaded ] pol in
      let shape =
        if seed mod 2 = 0 then Request.Poisson { rate_hz = 30000.0 }
        else Request.Bursty { rate_hz = 30000.0; burst = 6 }
      in
      let t = trace ~shape ~seed ~n:40 () in
      let config = small_config ~instances ~policy ~queue_capacity () in
      check_conserved t (Serve.run ~config ~trace:t ()))

(* ---------- determinism ---------- *)

let test_determinism () =
  let run () =
    let t = trace ~seed:42 ~n:80 () in
    Json.to_string (Serve.report_json (Serve.run ~config:(small_config ()) ~trace:t ()))
  in
  Alcotest.(check string) "bit-for-bit from seed" (run ()) (run ())

let test_trace_generator_shape () =
  let t = trace ~seed:7 ~n:50 () in
  Alcotest.(check int) "n requests" 50 (List.length t);
  List.iteri (fun i (r : Request.t) -> Alcotest.(check int) "ids in order" i r.Request.id) t;
  ignore
    (List.fold_left
       (fun prev (r : Request.t) ->
         Alcotest.(check bool) "arrivals sorted" true (r.Request.arrival_s >= prev);
         Alcotest.(check bool) "deadline after arrival" true
           (r.Request.deadline_s > r.Request.arrival_s);
         r.Request.arrival_s)
       0.0 t)

(* ---------- overload shedding ---------- *)

let test_overload_sheds_but_conserves () =
  let t =
    trace ~apps:[ "MobileRobot" ] ~shape:(Request.Bursty { rate_hz = 200000.0; burst = 16 })
      ~seed:11 ~n:120 ()
  in
  let config = small_config ~instances:1 ~queue_capacity:4 ~policy:Dispatch.Fifo () in
  let r = Serve.run ~config ~trace:t () in
  Alcotest.(check bool) "overload rejects some arrivals" true (r.Serve.rejections <> []);
  Alcotest.(check bool) "conserved" true (check_conserved t r);
  Alcotest.(check bool) "queue stayed bounded" true (r.Serve.queue_depth_max <= 4)

(* ---------- eviction under multi-tenancy ---------- *)

let test_capacity_one_thrashes_but_completes () =
  let t = trace ~seed:5 ~n:30 () in
  let r = Serve.run ~config:(small_config ~cache_capacity:1 ()) ~trace:t () in
  Alcotest.(check bool) "conserved" true (check_conserved t r);
  Alcotest.(check bool) "two tenants thrash a 1-entry cache" true
    (r.Serve.cache.Cache.evictions > 0);
  Alcotest.(check int) "single live entry" 1 r.Serve.cache.Cache.entries

(* ---------- degraded fleet ---------- *)

let test_masked_instance_reroutes () =
  let t = trace ~apps:[ "MobileRobot" ] ~seed:42 ~n:60 () in
  (* Queue larger than the trace: nothing sheds while the lone healthy
     instance is blocked on the initial compile miss. *)
  let config =
    small_config ~instances:2 ~masked:[ (0, Unit_model.Backsub_unit) ] ~queue_capacity:64 ()
  in
  let r = Serve.run ~config ~trace:t () in
  Alcotest.(check bool) "conserved" true (check_conserved t r);
  Alcotest.(check int) "every admitted request completes" r.Serve.admitted r.Serve.completed;
  (* Back substitution has a single unit: nothing may land on the dead slot. *)
  List.iter
    (fun c -> Alcotest.(check int) "placed on the healthy instance" 1 c.Serve.instance)
    r.Serve.completions;
  Alcotest.(check bool) "reroutes observed and reported" true (r.Serve.rerouted > 0)

let test_all_masked_is_unservable () =
  let t = trace ~apps:[ "MobileRobot" ] ~seed:3 ~n:10 () in
  let config = small_config ~instances:1 ~masked:[ (0, Unit_model.Backsub_unit) ] () in
  let r = Serve.run ~config ~trace:t () in
  Alcotest.(check bool) "conserved" true (check_conserved t r);
  Alcotest.(check int) "nothing completes" 0 r.Serve.completed;
  List.iter
    (fun (_, why) ->
      Alcotest.(check string) "structured rejection" "unservable" (Serve.rejection_name why))
    r.Serve.rejections

let test_unknown_app_rejected () =
  let t = trace ~apps:[ "NoSuchApp" ] ~seed:1 ~n:5 () in
  let r = Serve.run ~config:(small_config ()) ~trace:t () in
  Alcotest.(check int) "nothing completes" 0 r.Serve.completed;
  Alcotest.(check int) "all rejected" 5 (List.length r.Serve.rejections);
  Alcotest.(check bool) "conserved" true (check_conserved t r)

(* ---------- fault tolerance under chaos ---------- *)

let conserved_chaos = Orianna_fault.Fleet_chaos.conserved

(* Every policy x retry budget x hedging mode, under a 10% fault
   intensity: admitted = completed + shed + failed_after_retries, no id
   terminates twice, hedged duplicates dedupe.  This is the fleet-level
   conservation law with the failure machinery switched on. *)
let chaos_arb =
  QCheck.(
    make
      Gen.(
        quad (int_range 0 1_000_000) (int_range 0 2) (int_range 0 2) bool)
      ~print:QCheck.Print.(quad int int int bool))

let prop_conservation_chaos =
  QCheck.Test.make ~name:"serve: chaos campaign conserves every request" ~count:8 chaos_arb
    (fun (seed, pol, max_retries, hedge) ->
      let policy = List.nth [ Dispatch.Fifo; Dispatch.Edf; Dispatch.Least_loaded ] pol in
      let t = trace ~seed ~n:40 () in
      let config =
        {
          (small_config ~instances:2 ~policy ~queue_capacity:48 ()) with
          Serve.max_retries;
          hedge;
          chaos = Some (Chaos.of_intensity ~seed:(seed lxor 0x5DEECE) ~mttr_s:2e-3 0.1);
        }
      in
      let r = Serve.run ~config ~trace:t () in
      conserved_chaos t r
      && List.for_all
           (fun c -> c.Serve.attempts <= max_retries + (if hedge then 1 else 0))
           r.Serve.completions)

let test_chaos_campaign_job_invariance () =
  (* The Monte-Carlo chaos campaign fans runs over the domain pool; its
     JSON must be byte-identical at -j 1 and -j 4. *)
  let module FC = Orianna_fault.Fleet_chaos in
  let campaign () =
    let config = { FC.default_config with FC.runs = 4; requests = 30; apps = apps2 } in
    Json.to_string (FC.json (FC.run ~config ~rng:(Rng.of_int 2024) ()))
  in
  let was = Orianna_par.Pool.default_jobs () in
  Orianna_par.Pool.set_default_jobs 1;
  let j1 = campaign () in
  Orianna_par.Pool.set_default_jobs 4;
  let j4 = campaign () in
  Orianna_par.Pool.set_default_jobs was;
  Alcotest.(check string) "bit-for-bit at -j 1 vs -j 4" j1 j4

let test_fleet_dies_mid_run_unservable () =
  (* Instance 0 can never serve MobileRobot (masked back-substitution
     unit); instance 1 crashes mid-run and never restarts.  From the
     crash on, the whole fleet is unable to serve the class: everything
     still queued or recovered must be rejected [Unservable]
     immediately, not retried forever. *)
  let t = trace ~apps:[ "MobileRobot" ] ~seed:42 ~n:60 () in
  let config =
    {
      (small_config ~instances:2 ~masked:[ (0, Unit_model.Backsub_unit) ] ~queue_capacity:64 ())
      with
      Serve.chaos =
        Some { Chaos.default with Chaos.scripted = [ (1.0e-3, 1, Chaos.Crash) ]; restart = false };
    }
  in
  let r = Serve.run ~config ~trace:t () in
  Alcotest.(check bool) "conserved" true (conserved_chaos t r);
  let unservable =
    List.filter (fun (_, why) -> Serve.rejection_name why = "unservable") r.Serve.rejections
  in
  Alcotest.(check bool) "post-crash arrivals rejected unservable" true (List.length unservable > 0);
  Alcotest.(check int) "nothing completes after the lone capable instance dies" 0
    (List.length
       (List.filter (fun c -> c.Serve.finish_s > 1.0e-3 && c.Serve.instance = 1) r.Serve.completions
       |> List.filter (fun c -> c.Serve.start_s > 1.0e-3)));
  (match r.Serve.chaos with
  | None -> Alcotest.fail "chaos report missing"
  | Some c -> Alcotest.(check int) "one crash injected" 1 c.Serve.crashes)

let test_retries_recover_scripted_crash () =
  (* One scripted crash while instance 0 holds an in-flight batch.  With
     a retry budget the recovered work re-dispatches and completes; with
     retries = 0 the same ids surface as structured failed-after-retries
     (never silent loss).  Strictly higher completion with retries is
     the issue's acceptance bar, pinned here deterministically. *)
  let t = trace ~apps:[ "MobileRobot" ] ~seed:42 ~n:60 () in
  let with_retries n =
    let config =
      {
        (small_config ~instances:2 ~queue_capacity:64 ()) with
        Serve.max_retries = n;
        chaos =
          Some
            {
              Chaos.default with
              Chaos.scripted = [ (1.0e-3, 0, Chaos.Crash) ];
              restart_mean_s = 2e-3;
              seed = 7;
            };
      }
    in
    Serve.run ~config ~trace:t ()
  in
  let r0 = with_retries 0 and r2 = with_retries 2 in
  Alcotest.(check bool) "retries=0 conserved" true (conserved_chaos t r0);
  Alcotest.(check bool) "retries=2 conserved" true (conserved_chaos t r2);
  Alcotest.(check bool) "crash actually cost completions at retries=0" true
    (r0.Serve.completed < r0.Serve.admitted);
  Alcotest.(check bool) "strictly higher completion with retries" true
    (r2.Serve.completed > r0.Serve.completed);
  let failed r =
    match r.Serve.chaos with Some c -> c.Serve.failed_after_retries | None -> 0
  in
  Alcotest.(check bool) "losses at retries=0 are structured, not silent" true (failed r0 > 0);
  List.iter
    (fun (_, why) ->
      Alcotest.(check string) "failed-after-retries rejection" "failed-after-retries"
        (Serve.rejection_name why))
    r0.Serve.rejections

let test_breaker_state_machine () =
  (* The per-instance circuit breaker in isolation: the threshold counts
     consecutive failures, the open cooldown doubles per reopen, a
     half-open probe success closes it, and a success anywhere resets
     the streak. *)
  let n = (Chaos.make_nodes 1).(0) in
  let fail ~now_s = Chaos.breaker_failure n ~now_s ~threshold:3 ~cooldown_s:1e-3 in
  Alcotest.(check bool) "below threshold stays closed" false (fail ~now_s:0.0);
  Alcotest.(check bool) "still below threshold" false (fail ~now_s:1e-4);
  ignore (Chaos.breaker_success n);
  Alcotest.(check bool) "success resets the streak" false (fail ~now_s:2e-4);
  Alcotest.(check bool) "..." false (fail ~now_s:3e-4);
  Alcotest.(check bool) "third consecutive failure trips" true (fail ~now_s:4e-4);
  (match n.Chaos.breaker with
  | Chaos.Open_until t -> Alcotest.(check (float 1e-12)) "base cooldown" (4e-4 +. 1e-3) t
  | _ -> Alcotest.fail "breaker should be open");
  Alcotest.(check bool) "open rejects traffic" false (Chaos.routable n ~now_s:1e-3);
  Alcotest.(check bool) "elapsed cooldown admits a probe" true (Chaos.routable n ~now_s:2e-3);
  Alcotest.(check bool) "probe armed" true (Chaos.arm_probe n ~now_s:2e-3);
  Alcotest.(check bool) "probe failure reopens" true (fail ~now_s:2e-3);
  (match n.Chaos.breaker with
  | Chaos.Open_until t -> Alcotest.(check (float 1e-12)) "cooldown doubled" (2e-3 +. 2e-3) t
  | _ -> Alcotest.fail "breaker should have reopened");
  Alcotest.(check bool) "probe 2 armed" true (Chaos.arm_probe n ~now_s:5e-3);
  Alcotest.(check bool) "probe success closes" true (Chaos.breaker_success n);
  Alcotest.(check bool) "closed admits traffic" true (Chaos.routable n ~now_s:5e-3)

let test_breaker_opens_on_transients () =
  (* End-to-end: a scripted transient fails the in-flight batch on the
     lone instance; with a threshold of 1 the breaker must open, divert
     nothing (no peer exists), recover through a half-open probe, and
     still drain the whole trace. *)
  let t = trace ~apps:[ "MobileRobot" ] ~seed:9 ~n:40 () in
  let config =
    {
      (small_config ~instances:1 ~queue_capacity:64 ()) with
      Serve.max_retries = 8;
      breaker_threshold = 1;
      chaos =
        Some
          { Chaos.default with Chaos.scripted = [ (0.5e-3, 0, Chaos.Transient) ]; seed = 3 };
    }
  in
  let r = Serve.run ~config ~trace:t () in
  Alcotest.(check bool) "conserved" true (conserved_chaos t r);
  match r.Serve.chaos with
  | None -> Alcotest.fail "chaos report missing"
  | Some c ->
      Alcotest.(check int) "transient delivered" 1 c.Serve.transients;
      Alcotest.(check bool) "breaker opened" true (c.Serve.breaker_opens >= 1);
      Alcotest.(check bool) "breaker-open transition recorded" true
        (List.exists (fun (_, _, l) -> l = "breaker-open") c.Serve.transitions);
      Alcotest.(check bool) "breaker closed again after the probe" true
        (List.exists (fun (_, _, l) -> l = "breaker-close") c.Serve.transitions);
      Alcotest.(check int) "trace fully drained despite the trip" r.Serve.admitted
        r.Serve.completed

let test_obs_counters_single_source () =
  (* Satellite fix: [serve.rerouted] / [serve.deadline_miss] are derived
     from the report at the end of the run — the Obs counters and the
     report fields can never drift apart. *)
  let t = trace ~apps:[ "MobileRobot" ] ~seed:42 ~n:60 () in
  let config =
    small_config ~instances:2 ~masked:[ (0, Unit_model.Backsub_unit) ] ~queue_capacity:64 ()
  in
  let module Obs = Orianna_obs.Obs in
  Obs.enable ();
  Obs.reset ();
  let r = Serve.run ~config ~trace:t () in
  let rerouted_counter = Obs.counter "serve.rerouted" in
  let miss_counter = Obs.counter "serve.deadline_miss" in
  Obs.disable ();
  Alcotest.(check bool) "test exercises rerouting" true (r.Serve.rerouted > 0);
  Alcotest.(check int) "Obs serve.rerouted = report.rerouted" r.Serve.rerouted rerouted_counter;
  Alcotest.(check int) "Obs serve.deadline_miss = report.deadline_misses" r.Serve.deadline_misses
    miss_counter

(* ---------- streaming sessions ---------- *)

module Stream = Orianna_apps.Stream
module Datasets = Orianna_apps.Datasets

let tiny_stream = Stream.manhattan ~cfg:{ Datasets.default_config with Datasets.steps = 11 } ()

let mission ?(priority = Request.Normal) ?(start_s = 0.0) ?(period_s = 1e-4) mid stream =
  { Session.mid; stream; start_s; period_s; priority; deadline_slack_s = 50e-3 }

let session_params = { Session.default_params with Session.template_ticks = 6 }

let test_sessions_complete_and_deterministic () =
  let run () =
    let sess =
      Session.create ~params:session_params ~opt_level:1
        ~missions:[ mission 0 tiny_stream; mission ~start_s:2e-5 1 tiny_stream ]
        ()
    in
    let t = trace ~apps:[ "MobileRobot" ] ~seed:42 ~n:20 () in
    let r = Serve.run ~config:(small_config ~queue_capacity:64 ()) ~sessions:sess ~trace:t () in
    (r, Json.to_string (Serve.report_json r))
  in
  let r, j1 = run () in
  let _, j2 = run () in
  Alcotest.(check string) "bit-for-bit across runs" j1 j2;
  (* Solves and ticks both drain: 20 solves + 2 x 12 ticks. *)
  let len = Stream.length tiny_stream in
  Alcotest.(check int) "everything admitted" (20 + (2 * len)) r.Serve.admitted;
  Alcotest.(check int) "everything completed" r.Serve.admitted r.Serve.completed;
  (* Both tenants replay the same stream and share one compiled
     template; the solves add exactly one more compile. *)
  Alcotest.(check int) "one compile per program" 2 r.Serve.cache.Cache.misses;
  match r.Serve.sessions with
  | None -> Alcotest.fail "session report missing"
  | Some s ->
      Alcotest.(check int) "two sessions" 2 (List.length s.Session.per_session);
      Alcotest.(check int) "both resident at the end" 2 s.Session.active;
      Alcotest.(check int) "every tick folded exactly once" (2 * len) s.Session.ticks_total;
      Alcotest.(check int) "no restarts" 0 s.Session.restarts_total;
      List.iter
        (fun ss ->
          Alcotest.(check int)
            (Printf.sprintf "session %d live variables" ss.Session.sid)
            len ss.Session.live_variables)
        s.Session.per_session

let test_zero_sessions_report_unchanged () =
  (* Without a session layer the report must not even mention one: the
     JSON shape (and the whole DES) is that of the session-free
     runtime. *)
  let t = trace ~seed:42 ~n:30 () in
  let r = Serve.run ~config:(small_config ()) ~trace:t () in
  Alcotest.(check bool) "no sessions field in report" true (r.Serve.sessions = None);
  let j = Serve.report_json r in
  Alcotest.(check bool) "no sessions key in JSON" true (Json.member "sessions" j = None)

let test_tick_without_session_layer_unservable () =
  let sess = Session.create ~params:session_params ~opt_level:1 ~missions:[ mission 0 tiny_stream ] () in
  let ticks = Session.mission_requests sess in
  Alcotest.(check bool) "tick ids above the solve range" true
    (List.for_all (fun (r : Request.t) -> r.Request.id >= 1_000_000) ticks);
  let r = Serve.run ~config:(small_config ()) ~trace:ticks () in
  Alcotest.(check int) "nothing completes" 0 r.Serve.completed;
  List.iter
    (fun (_, why) ->
      Alcotest.(check string) "structured rejection" "unservable" (Serve.rejection_name why))
    r.Serve.rejections

let test_session_lru_eviction_and_restart () =
  (* Capacity one with two interleaved tenants: every switch evicts the
     other session, whose next tick restarts it from the top of its
     stream.  Work is refolded, never lost. *)
  let sess =
    Session.create
      ~params:{ session_params with Session.max_sessions = 1; idle_timeout_s = 0.0 }
      ~opt_level:1
      ~missions:[ mission 0 tiny_stream; mission ~start_s:5e-5 1 tiny_stream ]
      ()
  in
  let r = Serve.run ~config:(small_config ()) ~sessions:sess ~trace:[] () in
  Alcotest.(check int) "all ticks complete" (2 * Stream.length tiny_stream) r.Serve.completed;
  match r.Serve.sessions with
  | None -> Alcotest.fail "session report missing"
  | Some s ->
      Alcotest.(check int) "one resident at the end" 1 s.Session.active;
      Alcotest.(check bool) "evictions happened" true (s.Session.evictions_total > 0);
      Alcotest.(check bool) "restarts happened" true (s.Session.restarts_total > 0);
      Alcotest.(check bool) "restarts refold earlier ticks" true
        (s.Session.ticks_total > 2 * Stream.length tiny_stream)

let test_session_idle_expiry () =
  (* Tick spacing beyond the idle timeout: the session expires between
     ticks and restarts on the next one. *)
  let sess =
    Session.create
      ~params:{ session_params with Session.idle_timeout_s = 1e-4 }
      ~opt_level:1
      ~missions:[ mission ~period_s:1e-3 0 tiny_stream ]
      ()
  in
  let r = Serve.run ~config:(small_config ()) ~sessions:sess ~trace:[] () in
  Alcotest.(check int) "all ticks complete" (Stream.length tiny_stream) r.Serve.completed;
  match r.Serve.sessions with
  | None -> Alcotest.fail "session report missing"
  | Some s ->
      Alcotest.(check bool) "expiries happened" true (s.Session.expiries_total > 0);
      Alcotest.(check bool) "each expiry caused a restart" true
        (s.Session.restarts_total >= s.Session.expiries_total - 1)

let test_session_windowed_smoother () =
  (* A sliding window inside the session layer: live variables stay
     bounded while marginalization folds the rest out. *)
  let sess =
    Session.create
      ~params:{ session_params with Session.window = Some 6 }
      ~opt_level:1
      ~missions:[ mission 0 tiny_stream ]
      ()
  in
  let r = Serve.run ~config:(small_config ()) ~sessions:sess ~trace:[] () in
  Alcotest.(check int) "all ticks complete" (Stream.length tiny_stream) r.Serve.completed;
  match r.Serve.sessions with
  | None -> Alcotest.fail "session report missing"
  | Some s ->
      let ss = List.hd s.Session.per_session in
      Alcotest.(check bool) "window bounds the live set" true (ss.Session.live_variables <= 6);
      Alcotest.(check int) "the rest were marginalized"
        (Stream.length tiny_stream - ss.Session.live_variables)
        ss.Session.marginalized

(* ---------- steady state ---------- *)

let test_single_app_hit_rate () =
  (* The acceptance bar: a steady-state single-app trace compiles once
     and hits the cache from then on. *)
  let t = trace ~apps:[ "MobileRobot" ] ~seed:42 ~n:100 () in
  let r = Serve.run ~config:(small_config ()) ~trace:t () in
  Alcotest.(check int) "all completed" 100 r.Serve.completed;
  Alcotest.(check int) "one compile" 1 r.Serve.cache.Cache.misses;
  Alcotest.(check bool) "hit rate >= 0.9" true (Cache.hit_rate r.Serve.cache >= 0.9)

let () =
  Alcotest.run "serve"
    [
      ( "cache",
        [
          Alcotest.test_case "structural key" `Quick test_structural_key_seed_invariant;
          Alcotest.test_case "structural key opt level" `Quick test_structural_key_opt_level;
          Alcotest.test_case "counts and LRU" `Slow test_cache_counts_and_lru;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "determinism" `Slow test_determinism;
          Alcotest.test_case "trace generator" `Quick test_trace_generator_shape;
          Alcotest.test_case "overload sheds" `Slow test_overload_sheds_but_conserves;
          Alcotest.test_case "cache thrash" `Slow test_capacity_one_thrashes_but_completes;
          Alcotest.test_case "single-app hit rate" `Slow test_single_app_hit_rate;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "masked reroutes" `Slow test_masked_instance_reroutes;
          Alcotest.test_case "all masked unservable" `Slow test_all_masked_is_unservable;
          Alcotest.test_case "unknown app" `Quick test_unknown_app_rejected;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "campaign j1 = j4" `Slow test_chaos_campaign_job_invariance;
          Alcotest.test_case "fleet dies mid-run" `Slow test_fleet_dies_mid_run_unservable;
          Alcotest.test_case "retries recover a crash" `Slow test_retries_recover_scripted_crash;
          Alcotest.test_case "breaker state machine" `Quick test_breaker_state_machine;
          Alcotest.test_case "breaker trips on transients" `Slow test_breaker_opens_on_transients;
          Alcotest.test_case "Obs counters single-sourced" `Slow test_obs_counters_single_source;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "complete + deterministic" `Slow test_sessions_complete_and_deterministic;
          Alcotest.test_case "zero sessions unchanged" `Slow test_zero_sessions_report_unchanged;
          Alcotest.test_case "tick without layer unservable" `Quick
            test_tick_without_session_layer_unservable;
          Alcotest.test_case "LRU eviction restarts" `Slow test_session_lru_eviction_and_restart;
          Alcotest.test_case "idle expiry" `Slow test_session_idle_expiry;
          Alcotest.test_case "windowed smoother" `Slow test_session_windowed_smoother;
        ] );
      ( "conservation",
        [
          QCheck_alcotest.to_alcotest prop_conservation;
          QCheck_alcotest.to_alcotest prop_conservation_chaos;
        ] );
    ]
