open Orianna_fg
open Orianna_factors
open Orianna_isa
open Orianna_hw
open Orianna_sim
open Orianna_util
module Compile = Orianna_compiler.Compile

(* A representative program: the compiled mobile-robot application. *)
let program ?opt_level () =
  Compile.compile_application ?opt_level
    (Orianna_apps.App.mobile_robot.Orianna_apps.App.graphs (Rng.of_int 7))

let small_graph () =
  let g = Graph.create () in
  Graph.add_variable g "x" (Var.Vector [| 1.0; 2.0 |]);
  Graph.add_variable g "y" (Var.Vector [| 0.0; 0.0 |]);
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"px" ~var:"x" ~target:[| 0.0; 0.0 |] ~sigmas:[| 1.0; 1.0 |]);
  Graph.add_factor g
    (Motion_factors.smooth ~name:"s" ~a:"x" ~b:"y" ~dt:0.0 ~d:1 ~sigma:1.0);
  g

let check_valid_schedule (p : Program.t) (accel : Accel.t) (r : Schedule.result) =
  (* Dependencies respected. *)
  Array.iter
    (fun (ins : Instr.t) ->
      Array.iter
        (fun s ->
          if r.Schedule.finishes.(s) > r.Schedule.starts.(ins.Instr.id) then
            Alcotest.failf "instruction i%d starts before its source i%d finishes" ins.Instr.id s)
        ins.Instr.srcs)
    p.Program.instrs;
  (* No unit class oversubscribed: at any instruction start, the
     number of overlapping instructions of that class must not exceed
     the instance count. *)
  List.iter
    (fun (cls, count) ->
      let mine =
        Array.to_list p.Program.instrs
        |> List.filter (fun (i : Instr.t) -> Unit_model.class_of_op i.Instr.op = cls)
      in
      List.iter
        (fun (i : Instr.t) ->
          let t = r.Schedule.starts.(i.Instr.id) in
          let overlapping =
            List.length
              (List.filter
                 (fun (j : Instr.t) ->
                   r.Schedule.starts.(j.Instr.id) <= t && r.Schedule.finishes.(j.Instr.id) > t)
                 mine)
          in
          if overlapping > count then
            Alcotest.failf "unit %s oversubscribed: %d > %d at t=%d" (Unit_model.class_name cls)
              overlapping count t)
        mine)
    accel.Accel.counts

let test_ooo_schedule_valid () =
  let p = program () in
  let accel = Accel.base () in
  check_valid_schedule p accel (Schedule.run ~accel ~policy:Schedule.Ooo_full p)

let test_ooo_fine_schedule_valid () =
  let p = program () in
  let accel = Accel.with_extra (Accel.base ()) Unit_model.Matmul in
  check_valid_schedule p accel (Schedule.run ~accel ~policy:Schedule.Ooo_fine p)

let test_in_order_is_serial () =
  let p = program () in
  let accel = Accel.base () in
  let r = Schedule.run ~accel ~policy:Schedule.In_order p in
  (* No scoreboard: instructions never overlap at all. *)
  Array.iteri
    (fun i (_ : Instr.t) ->
      if i > 0 && r.Schedule.starts.(i) < r.Schedule.finishes.(i - 1) then
        Alcotest.failf "in-order overlap at i%d" i)
    p.Program.instrs

let test_policy_ordering () =
  (* OoO-full <= OoO-fine <= in-order. *)
  let p = program () in
  let accel = Accel.base () in
  let t policy = (Schedule.run ~accel ~policy p).Schedule.cycles in
  let full = t Schedule.Ooo_full and fine = t Schedule.Ooo_fine and io = t Schedule.In_order in
  Alcotest.(check bool) (Printf.sprintf "full %d <= fine %d" full fine) true (full <= fine);
  Alcotest.(check bool) (Printf.sprintf "fine %d <= io %d" fine io) true (fine <= io)

let test_more_units_never_hurt () =
  let p = program () in
  let base = Accel.base () in
  let bigger =
    List.fold_left Accel.with_extra base
      [ Unit_model.Matmul; Unit_model.Qr_unit; Unit_model.Dma; Unit_model.Vector_alu ]
  in
  let t accel = (Schedule.run ~accel ~policy:Schedule.Ooo_full p).Schedule.cycles in
  Alcotest.(check bool) "not slower" true (t bigger <= t base)

let test_makespan_at_least_critical_path () =
  let p = program () in
  let accel = Accel.base () in
  let r = Schedule.run ~accel ~policy:Schedule.Ooo_full p in
  (* Makespan is at least the busiest unit's serial work divided
     among its instances, and at least any single instruction. *)
  List.iter
    (fun (cls, busy) ->
      let k = Accel.count accel cls in
      if r.Schedule.cycles * k < busy then
        Alcotest.failf "makespan below %s capacity bound" (Unit_model.class_name cls))
    r.Schedule.unit_busy

let test_energy_components () =
  let p = program () in
  let accel = Accel.base () in
  let r = Schedule.run ~accel ~policy:Schedule.Ooo_full p in
  Alcotest.(check (float 1e-12)) "energy sums" r.Schedule.energy_j
    (r.Schedule.dynamic_energy_j +. r.Schedule.static_energy_j);
  Alcotest.(check bool) "dynamic positive" true (r.Schedule.dynamic_energy_j > 0.0);
  Alcotest.(check bool) "static positive" true (r.Schedule.static_energy_j > 0.0)

let test_dynamic_energy_policy_invariant () =
  (* The same instructions execute whatever the schedule: dynamic
     energy must be identical across policies. *)
  let p = program () in
  let accel = Accel.base () in
  let e policy = (Schedule.run ~accel ~policy p).Schedule.dynamic_energy_j in
  Alcotest.(check (float 1e-15)) "io = ooo" (e Schedule.In_order) (e Schedule.Ooo_full)

let test_phase_accounting () =
  let p = program () in
  let r = Schedule.run ~accel:(Accel.base ()) ~policy:Schedule.Ooo_full p in
  let total_busy = List.fold_left (fun acc (_, c) -> acc + c) 0 r.Schedule.phase_busy in
  let unit_busy = List.fold_left (fun acc (_, c) -> acc + c) 0 r.Schedule.unit_busy in
  Alcotest.(check int) "phase busy = unit busy" unit_busy total_busy;
  Alcotest.(check bool) "three phases" true (List.length r.Schedule.phase_busy = 3)

let test_utilization_bounds () =
  let p = program () in
  let r = Schedule.run ~accel:(Accel.base ()) ~policy:Schedule.Ooo_full p in
  List.iter
    (fun (cls, u) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s utilization in [0,1]" (Unit_model.class_name cls))
        true (u >= 0.0 && u <= 1.0))
    r.Schedule.utilization

let test_tiny_graph_simulates () =
  let p = Compile.compile (small_graph ()) in
  let r = Schedule.run ~accel:(Accel.base ()) ~policy:Schedule.Ooo_full p in
  Alcotest.(check bool) "nonzero cycles" true (r.Schedule.cycles > 0)

let test_fifo_priority_not_faster () =
  (* Critical-path priority is at least as good as FIFO on a raw
     (unoptimized) stream.  At O1 the claim no longer holds: the
     optimizer's latency-aware reorder bakes a good issue order into
     the program, which FIFO then follows verbatim — so this check is
     pinned to O0, where it probes the scheduler heuristic alone. *)
  let p = program ~opt_level:0 () in
  let accel = Accel.base () in
  let cp = (Schedule.run ~priority:Schedule.Critical_path ~accel ~policy:Schedule.Ooo_full p).Schedule.cycles in
  let fifo = (Schedule.run ~priority:Schedule.Fifo ~accel ~policy:Schedule.Ooo_full p).Schedule.cycles in
  Alcotest.(check bool) (Printf.sprintf "cp %d <= fifo %d" cp fifo) true (cp <= fifo)

let test_trace_gantt_csv () =
  let p = program () in
  let r = Schedule.run ~accel:(Accel.base ()) ~policy:Schedule.Ooo_full p in
  let csv = Trace.gantt_csv p r in
  let lines = String.split_on_char '\n' csv in
  (* Header plus one row per instruction (trailing newline). *)
  Alcotest.(check int) "row count" (Program.length p + 2) (List.length lines);
  Alcotest.(check string) "header" "id,opcode,phase,algo,unit,start,finish,cycles" (List.hd lines);
  (* start <= finish on every data row. *)
  List.iteri
    (fun i line ->
      if i > 0 && line <> "" then
        match String.split_on_char ',' line with
        | [ _; _; _; _; _; start; finish; _ ] ->
            if int_of_string start > int_of_string finish then
              Alcotest.failf "row %d: start %s > finish %s" i start finish
        | _ -> Alcotest.failf "row %d: wrong column count: %s" i line)
    lines

let test_trace_timeline_width_honoured () =
  let p = program () in
  let r = Schedule.run ~accel:(Accel.base ()) ~policy:Schedule.Ooo_full p in
  List.iter
    (fun width ->
      let tl = Trace.utilization_timeline ~width p r in
      List.iter
        (fun l -> Alcotest.(check int) (Printf.sprintf "width %d" width) (9 + width) (String.length l))
        (List.filter (fun l -> l <> "") (String.split_on_char '\n' tl)))
    [ 1; 17; 72; 100 ]

let test_trace_timeline_shape () =
  let p = program () in
  let r = Schedule.run ~accel:(Accel.base ()) ~policy:Schedule.Ooo_full p in
  let tl = Trace.utilization_timeline ~width:40 p r in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' tl) in
  Alcotest.(check int) "one line per unit class" 6 (List.length lines);
  List.iter (fun l -> Alcotest.(check int) "width" (9 + 40) (String.length l)) lines

let test_trace_dot () =
  let p = program () in
  let dot = Trace.to_dot p in
  Alcotest.(check bool) "digraph" true (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  (* Balanced braces, never dipping negative. *)
  let depth = ref 0 in
  String.iter
    (fun c ->
      if c = '{' then incr depth
      else if c = '}' then begin
        decr depth;
        if !depth < 0 then Alcotest.fail "unbalanced '}'"
      end)
    dot;
  Alcotest.(check int) "balanced braces" 0 !depth

let test_stall_accounting () =
  (* Per instruction, operand stall + structural stall + latency =
     finish (base cycle is 0 for these policies), so the totals must
     tie out against total busy cycles and summed finish times. *)
  let p = program () in
  let accel = Accel.base () in
  List.iter
    (fun policy ->
      let r = Schedule.run ~accel ~policy p in
      let total_busy = List.fold_left (fun acc (_, c) -> acc + c) 0 r.Schedule.unit_busy in
      let sum_finishes = Array.fold_left ( + ) 0 r.Schedule.finishes in
      Alcotest.(check bool) "stalls non-negative" true
        (r.Schedule.stall_operand_cycles >= 0 && r.Schedule.stall_structural_cycles >= 0);
      Alcotest.(check int)
        (Printf.sprintf "%s: stalls + busy = sum finishes" (Schedule.policy_name policy))
        sum_finishes
        (r.Schedule.stall_operand_cycles + r.Schedule.stall_structural_cycles + total_busy))
    [ Schedule.Ooo_full; Schedule.In_order ]

let test_stall_accounting_fine () =
  (* Under Ooo_fine the base cycle is each algorithm partition's start:
     stalls + busy + summed bases = summed finishes. *)
  let p = program () in
  let r = Schedule.run ~accel:(Accel.base ()) ~policy:Schedule.Ooo_fine p in
  let total_busy = List.fold_left (fun acc (_, c) -> acc + c) 0 r.Schedule.unit_busy in
  let sum_finishes = Array.fold_left ( + ) 0 r.Schedule.finishes in
  Alcotest.(check bool) "bounded by finishes" true
    (r.Schedule.stall_operand_cycles + r.Schedule.stall_structural_cycles + total_busy
    <= sum_finishes)

let test_in_order_has_no_operand_free_overlap () =
  (* The serial controller reports structural stall whenever the next
     instruction was ready before its predecessor finished. *)
  let p = program () in
  let r = Schedule.run ~accel:(Accel.base ()) ~policy:Schedule.In_order p in
  Alcotest.(check bool) "some structural stall" true (r.Schedule.stall_structural_cycles > 0)

let test_chrome_events_cover_instructions () =
  let p = program () in
  let r = Schedule.run ~accel:(Accel.base ()) ~policy:Schedule.Ooo_full p in
  let events = Trace.chrome_events p r in
  let slices =
    List.filter_map
      (function
        | Orianna_obs.Chrome_trace.Duration { pid; ts_us; dur_us; args; _ }
          when pid = Trace.accel_pid -> (
            match List.assoc_opt "id" args with
            | Some (Orianna_obs.Json.Num id) -> Some (int_of_float id, ts_us, dur_us)
            | _ -> None)
        | _ -> None)
      events
  in
  Alcotest.(check int) "one slice per instruction" (Program.length p) (List.length slices);
  let ids = List.sort_uniq compare (List.map (fun (id, _, _) -> id) slices) in
  Alcotest.(check int) "ids unique and complete" (Program.length p) (List.length ids);
  List.iter
    (fun (id, ts, dur) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "i%d start" id)
        (float_of_int r.Schedule.starts.(id)) ts;
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "i%d duration" id)
        (float_of_int (r.Schedule.finishes.(id) - r.Schedule.starts.(id)))
        dur)
    slices;
  (* The serialized trace is well-formed JSON. *)
  match Orianna_obs.Json.parse (Trace.chrome_trace p r) with
  | Orianna_obs.Json.Obj _ -> ()
  | _ -> Alcotest.fail "chrome trace is not a JSON object"

let test_coarse_vs_fine_gap () =
  (* Multi-algorithm program: full OoO interleaves algorithms, fine
     cannot — on a shared accelerator full must be at least as good,
     and with independent algorithms strictly better. *)
  let p = program () in
  let accel = Accel.base () in
  let full = (Schedule.run ~accel ~policy:Schedule.Ooo_full p).Schedule.cycles in
  let fine = (Schedule.run ~accel ~policy:Schedule.Ooo_fine p).Schedule.cycles in
  Alcotest.(check bool) (Printf.sprintf "full %d < fine %d" full fine) true (full < fine)

let () =
  Alcotest.run "sim"
    [
      ( "validity",
        [
          Alcotest.test_case "ooo schedule valid" `Quick test_ooo_schedule_valid;
          Alcotest.test_case "ooo-fine schedule valid" `Quick test_ooo_fine_schedule_valid;
          Alcotest.test_case "in-order serial" `Quick test_in_order_is_serial;
        ] );
      ( "performance",
        [
          Alcotest.test_case "policy ordering" `Quick test_policy_ordering;
          Alcotest.test_case "more units never hurt" `Quick test_more_units_never_hurt;
          Alcotest.test_case "capacity bound" `Quick test_makespan_at_least_critical_path;
          Alcotest.test_case "coarse vs fine gap" `Quick test_coarse_vs_fine_gap;
          Alcotest.test_case "fifo not faster" `Quick test_fifo_priority_not_faster;
        ] );
      ( "trace",
        [
          Alcotest.test_case "gantt csv" `Quick test_trace_gantt_csv;
          Alcotest.test_case "timeline shape" `Quick test_trace_timeline_shape;
          Alcotest.test_case "timeline width" `Quick test_trace_timeline_width_honoured;
          Alcotest.test_case "dot" `Quick test_trace_dot;
          Alcotest.test_case "stall accounting" `Quick test_stall_accounting;
          Alcotest.test_case "stall accounting fine" `Quick test_stall_accounting_fine;
          Alcotest.test_case "in-order structural stall" `Quick test_in_order_has_no_operand_free_overlap;
          Alcotest.test_case "chrome events coverage" `Quick test_chrome_events_cover_instructions;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "energy components" `Quick test_energy_components;
          Alcotest.test_case "dynamic invariant" `Quick test_dynamic_energy_policy_invariant;
          Alcotest.test_case "phase accounting" `Quick test_phase_accounting;
          Alcotest.test_case "utilization bounds" `Quick test_utilization_bounds;
          Alcotest.test_case "tiny graph" `Quick test_tiny_graph_simulates;
        ] );
    ]
