open Orianna_linalg
open Orianna_lie
open Orianna_fg
open Orianna_util
module Expr = Orianna_ir.Expr

let check_vec msg ?(eps = 1e-8) a b =
  if not (Vec.equal ~eps a b) then
    Alcotest.failf "%s: %a vs %a" msg (fun ppf -> Vec.pp ppf) a (fun ppf -> Vec.pp ppf) b

(* Simple native factor: prior on a vector variable (v - z). *)
let vector_prior ~name ~var ~z ~sigma =
  let d = Vec.dim z in
  Factor.native ~name ~vars:[ var ] ~sigmas:(Array.make d sigma) ~error_dim:d (fun lookup ->
      match lookup var with
      | Var.Vector v -> (Vec.sub v z, [ (var, Mat.identity d) ])
      | Var.Pose2 _ | Var.Pose3 _ | Var.Se3 _ -> invalid_arg "vector_prior: pose")

(* Native factor: difference of two vector variables vs measurement. *)
let vector_between ~name ~a ~b ~z ~sigma =
  let d = Vec.dim z in
  Factor.native ~name ~vars:[ a; b ] ~sigmas:(Array.make d sigma) ~error_dim:d (fun lookup ->
      match (lookup a, lookup b) with
      | Var.Vector va, Var.Vector vb ->
          (Vec.sub (Vec.sub vb va) z, [ (a, Mat.neg (Mat.identity d)); (b, Mat.identity d) ])
      | _ -> invalid_arg "vector_between: pose")

(* Symbolic pose3 between factor. *)
let pose3_between ~name ~a ~b ~z ~sigma =
  let exprs =
    Expr.between_error ~pose_dim:3 ~x_i:b ~x_j:a ~z_rot:(Pose3.rotation z)
      ~z_trans:(Pose3.translation z)
  in
  Factor.symbolic ~name ~vars:[ a; b ] ~sigmas:(Array.make 6 sigma) exprs

(* Symbolic pose3 prior. *)
let pose3_prior ~name ~var ~z ~sigma =
  let exprs =
    Expr.between_error ~pose_dim:3 ~x_i:var ~x_j:"__anchor" ~z_rot:(Pose3.rotation z)
      ~z_trans:(Pose3.translation z)
  in
  (* Substituting the anchor by constants: easier to just use a native factor. *)
  ignore exprs;
  Factor.native ~name ~vars:[ var ] ~sigmas:(Array.make 6 sigma) ~error_dim:6 (fun lookup ->
      match lookup var with
      | Var.Pose3 p ->
          let e_rot = So3.log (Mat.mul (Mat.transpose (Pose3.rotation z)) (Pose3.rotation p)) in
          let e_trans = Vec.sub (Pose3.translation p) (Pose3.translation z) in
          let j = Mat.create 6 6 in
          Mat.set_block j 0 0 (So3.jr_inv e_rot);
          Mat.set_block j 3 3 (Mat.identity 3);
          (Vec.concat [ e_rot; e_trans ], [ (var, j) ])
      | Var.Pose2 _ | Var.Se3 _ | Var.Vector _ -> invalid_arg "pose3_prior: not a pose3")

(* ---------- Var ---------- *)

let test_var_dims () =
  Alcotest.(check int) "pose2" 3 (Var.dim (Var.Pose2 Pose2.identity));
  Alcotest.(check int) "pose3" 6 (Var.dim (Var.Pose3 Pose3.identity));
  Alcotest.(check int) "vector" 4 (Var.dim (Var.Vector (Vec.create 4)))

let test_var_retract_local () =
  let rng = Rng.of_int 5 in
  let vals =
    [
      Var.Pose2 (Pose2.random rng ~scale:1.0);
      Var.Pose3 (Pose3.random rng ~scale:1.0);
      Var.Vector [| 1.0; 2.0 |];
    ]
  in
  List.iter
    (fun v ->
      let d = Array.init (Var.dim v) (fun i -> 0.1 *. float_of_int (i + 1)) in
      let w = Var.retract v d in
      check_vec "retract/local" ~eps:1e-8 d (Var.local v w))
    vals

let test_var_kind_mismatch () =
  Alcotest.check_raises "local mismatch" (Invalid_argument "Var.local: kind mismatch") (fun () ->
      ignore (Var.local (Var.Vector [| 1.0 |]) (Var.Pose2 Pose2.identity)))

(* ---------- Graph ---------- *)

let test_graph_duplicate_variable () =
  let g = Graph.create () in
  Graph.add_variable g "x" (Var.Vector [| 0.0 |]);
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.add_variable: duplicate x") (fun () ->
      Graph.add_variable g "x" (Var.Vector [| 0.0 |]))

let test_graph_unknown_factor_var () =
  let g = Graph.create () in
  Alcotest.check_raises "unknown var"
    (Invalid_argument "Graph.add_factor: factor prior uses unknown variable x") (fun () ->
      Graph.add_factor g (vector_prior ~name:"prior" ~var:"x" ~z:[| 0.0 |] ~sigma:1.0))

let test_graph_error () =
  let g = Graph.create () in
  Graph.add_variable g "x" (Var.Vector [| 3.0 |]);
  Graph.add_factor g (vector_prior ~name:"prior" ~var:"x" ~z:[| 1.0 |] ~sigma:2.0);
  (* whitened error = (3-1)/2 = 1, squared = 1. *)
  Alcotest.(check (float 1e-12)) "error" 1.0 (Graph.error g)

(* ---------- Ordering ---------- *)

let test_ordering_permutations () =
  let vars = [ "a"; "b"; "c" ] in
  let scopes = [ [ "a"; "b" ]; [ "b"; "c" ] ] in
  List.iter
    (fun s ->
      let order = Ordering.compute s ~vars ~factor_scopes:scopes in
      Alcotest.(check int) "length" 3 (List.length order);
      List.iter
        (fun v -> Alcotest.(check bool) ("contains " ^ v) true (List.mem v order))
        vars)
    [ Ordering.Natural; Ordering.Reverse; Ordering.Min_degree ]

let test_min_degree_prefers_leaves () =
  (* A star graph: the hub has degree 3, the spokes 1 — spokes first. *)
  let vars = [ "hub"; "s1"; "s2"; "s3" ] in
  let scopes = [ [ "hub"; "s1" ]; [ "hub"; "s2" ]; [ "hub"; "s3" ] ] in
  let order = Ordering.compute Ordering.Min_degree ~vars ~factor_scopes:scopes in
  (* The hub starts with degree 3: it cannot be eliminated before the
     spokes have brought its degree down. *)
  Alcotest.(check bool) "spoke first" true (List.hd order <> "hub");
  Alcotest.(check bool) "hub after two spokes" true
    (List.nth order 0 <> "hub" && List.nth order 1 <> "hub")

(* ---------- Elimination vs dense solve ---------- *)

let random_chain_graph seed n =
  let rng = Rng.of_int seed in
  let g = Graph.create () in
  for i = 0 to n - 1 do
    Graph.add_variable g
      (Printf.sprintf "x%d" i)
      (Var.Vector (Array.init 2 (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0)))
  done;
  Graph.add_factor g (vector_prior ~name:"p0" ~var:"x0" ~z:[| 0.1; -0.2 |] ~sigma:0.5);
  for i = 0 to n - 2 do
    let z = Array.init 2 (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
    Graph.add_factor g
      (vector_between
         ~name:(Printf.sprintf "b%d" i)
         ~a:(Printf.sprintf "x%d" i)
         ~b:(Printf.sprintf "x%d" (i + 1))
         ~z ~sigma:0.3)
  done;
  (* A couple of loop closures to create fill-in. *)
  if n > 4 then begin
    Graph.add_factor g
      (vector_between ~name:"loop1" ~a:"x0"
         ~b:(Printf.sprintf "x%d" (n - 1))
         ~z:[| 0.05; 0.05 |] ~sigma:0.4);
    Graph.add_factor g (vector_between ~name:"loop2" ~a:"x1" ~b:"x3" ~z:[| -0.1; 0.2 |] ~sigma:0.4)
  end;
  g

let deltas_of_dense g =
  let order = Graph.variables g in
  Linear_system.dense_solve ~var_order:order ~dims:(Graph.dims g) (Graph.linearize g)

let deltas_of_elimination g strategy =
  let order =
    Ordering.compute strategy ~vars:(Graph.variables g) ~factor_scopes:(Graph.factor_scopes g)
  in
  Elimination.solve ~order ~dims:(Graph.dims g) (Graph.linearize g)

let test_elimination_matches_dense () =
  List.iter
    (fun seed ->
      let g = random_chain_graph seed 6 in
      let dense = deltas_of_dense g in
      List.iter
        (fun strategy ->
          let sparse = deltas_of_elimination g strategy in
          List.iter
            (fun (v, d) ->
              check_vec
                (Printf.sprintf "delta %s (%s)" v (Ordering.strategy_name strategy))
                ~eps:1e-7 (List.assoc v dense) d)
            sparse)
        [ Ordering.Natural; Ordering.Reverse; Ordering.Min_degree ])
    [ 1; 2; 3 ]

let test_elimination_census () =
  let g = random_chain_graph 7 6 in
  let order = Graph.variables g in
  let result = Elimination.eliminate ~order ~dims:(Graph.dims g) (Graph.linearize g) in
  Alcotest.(check int) "one census entry per variable" 6 (List.length result.census);
  List.iter
    (fun (e : Elimination.census_entry) ->
      Alcotest.(check bool) "small dense blocks" true (e.rows <= 12 && e.cols <= 13);
      Alcotest.(check bool) "dense" true (e.density > 0.3))
    result.census

let test_elimination_r_is_triangular () =
  let g = random_chain_graph 11 5 in
  let order = Graph.variables g in
  let result = Elimination.eliminate ~order ~dims:(Graph.dims g) (Graph.linearize g) in
  let r = Elimination.r_matrix ~order ~dims:(Graph.dims g) result in
  Alcotest.(check bool) "R upper triangular" true (Mat.is_upper_triangular ~eps:1e-9 r);
  (* R^T R must equal the dense A^T A (information matrix). *)
  let asm =
    Linear_system.assemble ~var_order:order ~dims:(Graph.dims g) (Graph.linearize g)
  in
  let a, _ = Assembly.to_dense asm in
  let lhs = Mat.mul (Mat.transpose r) r in
  let rhs = Mat.mul (Mat.transpose a) a in
  if not (Mat.equal ~eps:1e-7 lhs rhs) then Alcotest.fail "RtR != AtA"

let test_cholesky_matches_qr () =
  List.iter
    (fun seed ->
      let g = random_chain_graph seed 6 in
      let order = Graph.variables g in
      let lin = Graph.linearize g in
      let qr = Elimination.solve ~method_:Elimination.Qr ~order ~dims:(Graph.dims g) lin in
      let ch = Elimination.solve ~method_:Elimination.Cholesky ~order ~dims:(Graph.dims g) lin in
      List.iter
        (fun (v, d) -> check_vec ("cholesky delta " ^ v) ~eps:1e-6 (List.assoc v qr) d)
        ch)
    [ 4; 5; 6 ]

let test_cholesky_cheaper () =
  (* Cholesky forms the small Hessian instead of orthogonalizing the
     tall Abar: fewer effective MACs on overdetermined frontals. *)
  let g = random_chain_graph 8 8 in
  let order = Graph.variables g in
  let lin = Graph.linearize g in
  let macs m =
    Macs.reset ();
    ignore (Elimination.solve ~method_:m ~order ~dims:(Graph.dims g) lin);
    Macs.count ()
  in
  let qr = macs Elimination.Qr and ch = macs Elimination.Cholesky in
  Alcotest.(check bool) (Printf.sprintf "cholesky %d < qr %d" ch qr) true (ch < qr)

let test_cholesky_pose_graph () =
  (* Full nonlinear pose-graph optimization through the Cholesky path. *)
  let rng = Rng.of_int 91 in
  let truth =
    Array.init 4 (fun i -> Pose3.of_phi_t [| 0.0; 0.1 *. float_of_int i; 0.0 |] [| float_of_int i; 0.0; 0.5 |])
  in
  let g = Graph.create () in
  Array.iteri
    (fun i p ->
      Graph.add_variable g (Printf.sprintf "x%d" i)
        (Var.Pose3 (Pose3.retract p (Array.init 6 (fun _ -> Rng.gaussian_sigma rng ~sigma:0.05)))))
    truth;
  Graph.add_factor g (pose3_prior ~name:"prior" ~var:"x0" ~z:truth.(0) ~sigma:0.01);
  for i = 0 to 2 do
    Graph.add_factor g
      (pose3_between ~name:(Printf.sprintf "o%d" i) ~a:(Printf.sprintf "x%d" i)
         ~b:(Printf.sprintf "x%d" (i + 1)) ~z:(Pose3.ominus truth.(i + 1) truth.(i)) ~sigma:0.05)
  done;
  let params = { Optimizer.default_params with factorization = Elimination.Cholesky } in
  let report = Optimizer.optimize ~params g in
  Alcotest.(check bool) "converged" true report.Optimizer.converged;
  Alcotest.(check bool) "tiny error" true (report.Optimizer.final_error < 1e-9)

let test_elimination_underconstrained () =
  let g = Graph.create () in
  Graph.add_variable g "x" (Var.Vector [| 0.0 |]);
  Graph.add_variable g "y" (Var.Vector [| 0.0 |]);
  Graph.add_factor g (vector_prior ~name:"p" ~var:"x" ~z:[| 0.0 |] ~sigma:1.0);
  Alcotest.(check bool) "raises underconstrained" true
    (try
       ignore (Elimination.solve ~order:(Graph.variables g) ~dims:(Graph.dims g) (Graph.linearize g));
       false
     with Elimination.Underconstrained v -> v = "y")

(* ---------- Optimizer ---------- *)

let test_optimizer_linear_problem_one_step () =
  (* Purely linear problem: GN converges in one iteration. *)
  let g = random_chain_graph 21 5 in
  let report = Optimizer.optimize ~params:{ Optimizer.default_params with max_iterations = 5 } g in
  Alcotest.(check bool) "converged" true report.Optimizer.converged;
  Alcotest.(check bool) "few iterations" true (report.Optimizer.iterations <= 2);
  Alcotest.(check bool) "near zero gradient step" true (report.Optimizer.final_error < report.Optimizer.initial_error +. 1e-12)

let test_optimizer_pose3_chain () =
  (* Three poses, prior on the first, noisy odometry between them.
     With exact measurements the optimizer must recover the chain. *)
  let rng = Rng.of_int 31 in
  let truth = Array.init 4 (fun i -> Pose3.of_phi_t [| 0.0; 0.0; 0.3 *. float_of_int i |] [| float_of_int i; 0.0; 0.0 |]) in
  let g = Graph.create () in
  Array.iteri
    (fun i p ->
      (* Perturbed initial estimates. *)
      let noise = Array.init 6 (fun _ -> Rng.gaussian_sigma rng ~sigma:0.1) in
      Graph.add_variable g (Printf.sprintf "x%d" i) (Var.Pose3 (Pose3.retract p noise)))
    truth;
  Graph.add_factor g (pose3_prior ~name:"prior" ~var:"x0" ~z:truth.(0) ~sigma:0.01);
  for i = 0 to 2 do
    let z = Pose3.ominus truth.(i + 1) truth.(i) in
    Graph.add_factor g
      (pose3_between
         ~name:(Printf.sprintf "odo%d" i)
         ~a:(Printf.sprintf "x%d" i)
         ~b:(Printf.sprintf "x%d" (i + 1))
         ~z ~sigma:0.05)
  done;
  let report = Optimizer.optimize g in
  Alcotest.(check bool) "converged" true report.Optimizer.converged;
  Alcotest.(check bool) "tiny error" true (report.Optimizer.final_error < 1e-10);
  Array.iteri
    (fun i p ->
      match Graph.value g (Printf.sprintf "x%d" i) with
      | Var.Pose3 q ->
          Alcotest.(check bool)
            (Printf.sprintf "pose %d recovered" i)
            true
            (Pose3.distance p q < 1e-5 && Pose3.angular_distance p q < 1e-5)
      | Var.Pose2 _ | Var.Se3 _ | Var.Vector _ -> Alcotest.fail "wrong kind")
    truth

let test_optimizer_lm_on_bad_init () =
  (* Large initial perturbations: plain GN can overshoot; LM must converge. *)
  let rng = Rng.of_int 77 in
  let truth = Array.init 5 (fun i -> Pose3.of_phi_t [| 0.0; 0.2 *. float_of_int i; 0.0 |] [| float_of_int i; 1.0; 0.0 |]) in
  let g = Graph.create () in
  Array.iteri
    (fun i p ->
      let noise = Array.init 6 (fun k -> if k < 3 then Rng.gaussian_sigma rng ~sigma:0.4 else Rng.gaussian_sigma rng ~sigma:1.0) in
      Graph.add_variable g (Printf.sprintf "x%d" i) (Var.Pose3 (Pose3.retract p noise)))
    truth;
  Graph.add_factor g (pose3_prior ~name:"prior" ~var:"x0" ~z:truth.(0) ~sigma:0.01);
  for i = 0 to 3 do
    let z = Pose3.ominus truth.(i + 1) truth.(i) in
    Graph.add_factor g
      (pose3_between ~name:(Printf.sprintf "odo%d" i) ~a:(Printf.sprintf "x%d" i)
         ~b:(Printf.sprintf "x%d" (i + 1)) ~z ~sigma:0.05)
  done;
  let params =
    { Optimizer.default_params with method_ = Optimizer.Levenberg_marquardt; max_iterations = 60 }
  in
  let report = Optimizer.optimize ~params g in
  Alcotest.(check bool)
    (Printf.sprintf "error reduced to %g" report.Optimizer.final_error)
    true
    (report.Optimizer.final_error < 1e-6)

let test_optimizer_macs_counted () =
  let g = random_chain_graph 41 4 in
  let report = Optimizer.optimize g in
  Alcotest.(check bool) "macs recorded" true (report.Optimizer.macs > 0)

(* ---------- Robust losses ---------- *)

let test_robust_weights () =
  Alcotest.(check (float 1e-12)) "trivial" 1.0 (Robust.weight Robust.Trivial 100.0);
  Alcotest.(check (float 1e-12)) "huber inside" 1.0 (Robust.weight (Robust.Huber 2.0) 1.0);
  Alcotest.(check (float 1e-12)) "huber outside" 0.5 (Robust.weight (Robust.Huber 2.0) 4.0);
  Alcotest.(check (float 1e-12)) "cauchy" 0.5 (Robust.weight (Robust.Cauchy 1.0) 1.0);
  Alcotest.(check (float 1e-12)) "tukey beyond" 0.0 (Robust.weight (Robust.Tukey 1.0) 2.0);
  Alcotest.(check bool) "weights in [0,1]" true
    (List.for_all
       (fun e ->
         List.for_all
           (fun l ->
             let w = Robust.weight l e in
             w >= 0.0 && w <= 1.0)
           [ Robust.Huber 1.5; Robust.Cauchy 1.5; Robust.Tukey 3.0 ])
       [ 0.0; 0.5; 1.0; 2.0; 10.0 ])

let test_robustify_scales_consistently () =
  (* Wrapped factor's error and Jacobian are the plain ones scaled by
     the same sqrt-weight. *)
  let f = vector_prior ~name:"p" ~var:"x" ~z:[| 0.0 |] ~sigma:1.0 in
  let rf = Robust.robustify (Robust.Huber 1.0) f in
  let lookup _ = Var.Vector [| 4.0 |] in
  let e0, b0 = Factor.linearize f lookup in
  let e1, b1 = Factor.linearize rf lookup in
  let s = sqrt (Robust.weight (Robust.Huber 1.0) 4.0) in
  check_vec "scaled error" (Vec.scale s e0) e1;
  let _, j0 = List.hd b0 and _, j1 = List.hd b1 in
  Alcotest.(check (float 1e-12)) "scaled jacobian" (s *. Mat.get j0 0 0) (Mat.get j1 0 0)

let test_robust_rejects_outlier () =
  (* A chain with one wildly wrong loop closure: with plain least
     squares the outlier drags the solution; with a robust loss the
     estimate stays near the truth. *)
  let build loss =
    let g = Graph.create () in
    for i = 0 to 4 do
      Graph.add_variable g (Printf.sprintf "x%d" i) (Var.Vector [| float_of_int i |])
    done;
    Graph.add_factor g (vector_prior ~name:"p0" ~var:"x0" ~z:[| 0.0 |] ~sigma:0.1);
    for i = 0 to 3 do
      Graph.add_factor g
        (Robust.robustify loss
           (vector_between
              ~name:(Printf.sprintf "b%d" i)
              ~a:(Printf.sprintf "x%d" i)
              ~b:(Printf.sprintf "x%d" (i + 1))
              ~z:[| 1.0 |] ~sigma:0.1))
    done;
    (* The outlier: claims x4 - x0 = 40 instead of 4. *)
    Graph.add_factor g
      (Robust.robustify loss (vector_between ~name:"outlier" ~a:"x0" ~b:"x4" ~z:[| 40.0 |] ~sigma:0.1));
    let params = { Optimizer.default_params with max_iterations = 60 } in
    ignore (Optimizer.optimize ~params g);
    match Graph.value g "x4" with Var.Vector v -> v.(0) | _ -> nan
  in
  let plain = build Robust.Trivial in
  let robust = build (Robust.Cauchy 1.0) in
  Alcotest.(check bool) (Printf.sprintf "plain dragged (%.2f)" plain) true (plain > 8.0);
  Alcotest.(check bool) (Printf.sprintf "robust stays (%.2f)" robust) true
    (Float.abs (robust -. 4.0) < 0.5)

let test_robust_bad_threshold () =
  Alcotest.check_raises "bad k" (Invalid_argument "Robust.huber: threshold must be positive")
    (fun () -> ignore (Robust.weight (Robust.Huber 0.0) 1.0))

(* ---------- Marginals ---------- *)

let test_marginals_match_dense_inverse () =
  let g = random_chain_graph 17 5 in
  let order = Graph.variables g in
  let lin = Graph.linearize g in
  let result = Elimination.eliminate ~order ~dims:(Graph.dims g) lin in
  let m = Marginals.of_result ~order ~dims:(Graph.dims g) result in
  (* Reference: (AᵀA)⁻¹ via Cholesky solves on the dense system. *)
  let asm = Linear_system.assemble ~var_order:order ~dims:(Graph.dims g) lin in
  let a, _ = Assembly.to_dense asm in
  let info = Mat.mul (Mat.transpose a) a in
  let n, _ = Mat.dims info in
  let dense_cov =
    Mat.init n n (fun i j ->
        let e = Vec.create n in
        e.(j) <- 1.0;
        (Chol.solve info e).(i))
  in
  if not (Mat.equal ~eps:1e-6 dense_cov (Marginals.full m)) then
    Alcotest.fail "full covariance mismatch";
  (* Per-variable marginal blocks line up. *)
  let off = ref 0 in
  List.iter
    (fun v ->
      let d = Graph.dims g v in
      let expected = Mat.block dense_cov !off !off d d in
      if not (Mat.equal ~eps:1e-6 expected (Marginals.marginal m v)) then
        Alcotest.failf "marginal mismatch at %s" v;
      off := !off + d)
    order

let test_marginals_prior_tightens () =
  (* More information -> smaller covariance. *)
  let build sigma =
    let g = Graph.create () in
    Graph.add_variable g "x" (Var.Vector [| 0.0 |]);
    Graph.add_factor g (vector_prior ~name:"p" ~var:"x" ~z:[| 0.0 |] ~sigma);
    let order = Graph.variables g in
    let result = Elimination.eliminate ~order ~dims:(Graph.dims g) (Graph.linearize g) in
    Mat.get (Marginals.marginal (Marginals.of_result ~order ~dims:(Graph.dims g) result) "x") 0 0
  in
  Alcotest.(check bool) "tighter prior, smaller variance" true (build 0.1 < build 1.0);
  Alcotest.(check (float 1e-9)) "variance = sigma^2" 0.01 (build 0.1)

let test_marginals_unknown_var () =
  let g = random_chain_graph 23 3 in
  let order = Graph.variables g in
  let result = Elimination.eliminate ~order ~dims:(Graph.dims g) (Graph.linearize g) in
  let m = Marginals.of_result ~order ~dims:(Graph.dims g) result in
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Marginals.marginal m "nope"))

(* ---------- Incremental smoothing ---------- *)

let lin_prior ~var ~z ~sigma =
  Linear_system.of_factor (vector_prior ~name:"p" ~var ~z ~sigma) (fun _ ->
      Var.Vector (Vec.create (Vec.dim z)))

let lin_between ~a ~b ~z ~sigma =
  Linear_system.of_factor (vector_between ~name:"b" ~a ~b ~z ~sigma) (fun _ ->
      Var.Vector (Vec.create (Vec.dim z)))

let test_incremental_matches_batch () =
  (* Grow a 2D chain one pose at a time; after every update the
     incremental solution must equal the batch solution. *)
  let rng = Rng.of_int 77 in
  let inc = Incremental.create () in
  Incremental.add_variable inc "x0" 2;
  let all = ref [ lin_prior ~var:"x0" ~z:[| 0.3; -0.1 |] ~sigma:0.5 ] in
  Incremental.update inc !all;
  for i = 1 to 8 do
    let v = Printf.sprintf "x%d" i in
    Incremental.add_variable inc v 2;
    let z = Array.init 2 (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
    let f = lin_between ~a:(Printf.sprintf "x%d" (i - 1)) ~b:v ~z ~sigma:0.3 in
    all := f :: !all;
    Incremental.update inc [ f ];
    let batch = Incremental.batch_equivalent inc !all in
    List.iter
      (fun (name, d) -> check_vec ("step " ^ string_of_int i ^ " " ^ name) ~eps:1e-7 (List.assoc name batch) d)
      (Incremental.solution inc)
  done

let test_incremental_locality () =
  (* Odometry extension touches O(1) variables, not the whole chain. *)
  let inc = Incremental.create () in
  Incremental.add_variable inc "x0" 2;
  Incremental.update inc [ lin_prior ~var:"x0" ~z:[| 0.0; 0.0 |] ~sigma:0.5 ];
  for i = 1 to 20 do
    let v = Printf.sprintf "x%d" i in
    Incremental.add_variable inc v 2;
    Incremental.update inc [ lin_between ~a:(Printf.sprintf "x%d" (i - 1)) ~b:v ~z:[| 1.0; 0.0 |] ~sigma:0.3 ]
  done;
  let s = Incremental.stats inc in
  Alcotest.(check int) "21 variables" 21 s.Incremental.total_variables;
  Alcotest.(check bool)
    (Printf.sprintf "local update touched %d vars" s.Incremental.affected_last)
    true
    (s.Incremental.affected_last <= 3)

let test_incremental_loop_closure_reaches_root () =
  let inc = Incremental.create () in
  Incremental.add_variable inc "x0" 1;
  Incremental.update inc [ lin_prior ~var:"x0" ~z:[| 0.0 |] ~sigma:0.5 ];
  for i = 1 to 10 do
    let v = Printf.sprintf "x%d" i in
    Incremental.add_variable inc v 1;
    Incremental.update inc [ lin_between ~a:(Printf.sprintf "x%d" (i - 1)) ~b:v ~z:[| 1.0 |] ~sigma:0.3 ]
  done;
  (* Loop closure from x0: affects the whole ancestor path. *)
  Incremental.update inc [ lin_between ~a:"x0" ~b:"x10" ~z:[| 10.1 |] ~sigma:0.3 ];
  let s = Incremental.stats inc in
  Alcotest.(check bool)
    (Printf.sprintf "loop touched %d vars" s.Incremental.affected_last)
    true
    (s.Incremental.affected_last = 11);
  (* Still exact. *)
  let solution = Incremental.solution inc in
  Alcotest.(check int) "all solved" 11 (List.length solution)

let test_incremental_duplicate_var () =
  let inc = Incremental.create () in
  Incremental.add_variable inc "x" 1;
  Alcotest.check_raises "duplicate" (Invalid_argument "Incremental.add_variable: duplicate x")
    (fun () -> Incremental.add_variable inc "x" 1)

let test_incremental_unknown_var () =
  let inc = Incremental.create () in
  Alcotest.(check bool) "unknown rejected" true
    (try
       Incremental.update inc [ lin_prior ~var:"ghost" ~z:[| 0.0 |] ~sigma:1.0 ];
       false
     with Invalid_argument _ -> true)

(* ---------- Nonlinear incremental smoother ---------- *)

let relin_off = { Smoother.relin_threshold = 0.0; max_relin_passes = 0; window = None }

let zero2 = Var.Vector (Vec.create 2)

let test_smoother_linear_exact () =
  (* Relinearization and marginalization off: after every update the
     smoother's deltas must equal a batch elimination of the same
     factors (fed in insertion order) — bit-identical stacking. *)
  let rng = Rng.of_int 31 in
  let sm = Smoother.create ~params:relin_off () in
  let fs = ref [] in
  let names = ref [ "x0" ] in
  let step f =
    Smoother.add_factor sm f;
    fs := !fs @ [ f ]
  in
  Smoother.add_variable sm "x0" zero2;
  step (vector_prior ~name:"p" ~var:"x0" ~z:[| 0.2; -0.4 |] ~sigma:0.5);
  Smoother.update sm;
  for i = 1 to 9 do
    let v = Printf.sprintf "x%d" i in
    Smoother.add_variable sm v zero2;
    names := !names @ [ v ];
    let z = Array.init 2 (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
    step (vector_between ~name:(Printf.sprintf "o%d" i) ~a:(Printf.sprintf "x%d" (i - 1)) ~b:v ~z ~sigma:0.3);
    if i = 7 then step (vector_between ~name:"l7" ~a:"x3" ~b:"x7" ~z:[| 0.1; 0.1 |] ~sigma:0.4);
    if i = 9 then step (vector_between ~name:"l9" ~a:"x0" ~b:"x9" ~z:[| 0.5; 0.5 |] ~sigma:0.4);
    Smoother.update sm;
    let linearized = List.map (fun f -> Linear_system.of_factor f (fun _ -> zero2)) !fs in
    let batch = Elimination.solve ~order:!names ~dims:(fun _ -> 2) linearized in
    List.iter
      (fun v ->
        check_vec
          (Printf.sprintf "step %d %s" i v)
          ~eps:0.0 (List.assoc v batch) (Smoother.delta sm v))
      !names
  done

let test_smoother_marginalization_linear_exact () =
  (* Sliding window on a linear chain with short loop closures: the
     surviving variables' solution must match the full batch solve —
     marginalization is exact in the linear case. *)
  let rng = Rng.of_int 97 in
  let window = 8 in
  let params = { Smoother.relin_threshold = 0.0; max_relin_passes = 0; window = Some window } in
  let sm = Smoother.create ~params () in
  let fs = ref [] in
  let names = ref [ "x0" ] in
  let step f =
    Smoother.add_factor sm f;
    fs := !fs @ [ f ]
  in
  Smoother.add_variable sm "x0" zero2;
  step (vector_prior ~name:"p" ~var:"x0" ~z:[| 0.1; 0.3 |] ~sigma:0.5);
  Smoother.update sm;
  let n = 30 in
  for i = 1 to n - 1 do
    let v = Printf.sprintf "x%d" i in
    Smoother.add_variable sm v zero2;
    names := !names @ [ v ];
    let z = Array.init 2 (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
    step (vector_between ~name:(Printf.sprintf "o%d" i) ~a:(Printf.sprintf "x%d" (i - 1)) ~b:v ~z ~sigma:0.3);
    if i mod 5 = 0 && i >= 4 then
      step (vector_between ~name:(Printf.sprintf "l%d" i) ~a:(Printf.sprintf "x%d" (i - 4)) ~b:v ~z:[| 0.05; -0.05 |] ~sigma:0.4);
    Smoother.update sm;
    Alcotest.(check bool)
      "window bound" true
      (List.length (Smoother.live_variables sm) <= window)
  done;
  let linearized = List.map (fun f -> Linear_system.of_factor f (fun _ -> zero2)) !fs in
  let batch = Elimination.solve ~order:!names ~dims:(fun _ -> 2) linearized in
  List.iter
    (fun v -> check_vec ("survivor " ^ v) ~eps:1e-9 (List.assoc v batch) (Smoother.delta sm v))
    (Smoother.live_variables sm);
  let s = Smoother.stats sm in
  Alcotest.(check int) "marginalized count" (n - window) s.Smoother.marginalized;
  (* Retired variables keep their last estimate and reject new factors. *)
  Alcotest.(check bool) "x0 retired" true (Smoother.is_retired sm "x0");
  ignore (Smoother.estimate sm "x0");
  Alcotest.(check bool) "retired factor rejected" true
    (try
       Smoother.add_factor sm
         (vector_between ~name:"late" ~a:"x0" ~b:(Printf.sprintf "x%d" (n - 1)) ~z:[| 0.0; 0.0 |] ~sigma:1.0);
       false
     with Smoother.Retired v -> v = "x0");
  Alcotest.(check int)
    "all_estimates covers everything" n
    (List.length (Smoother.all_estimates sm))

let test_smoother_relin_matches_gauss_newton () =
  (* Pose2 square loop with noisy odometry and a loop closure: with a
     tight relinearization threshold the incremental estimate must
     land on the batch Gauss-Newton fixed point. *)
  let rng = Rng.of_int 1234 in
  let n = 12 in
  let truth =
    Array.init n (fun i ->
        let side = i / 3 in
        let along = float_of_int (i mod 3) in
        let theta = float_of_int side *. (Float.pi /. 2.0) in
        let x, y =
          match side with
          | 0 -> (along, 0.0)
          | 1 -> (3.0, along)
          | 2 -> (3.0 -. along, 3.0)
          | _ -> (0.0, 3.0 -. along)
        in
        Pose2.create ~theta ~t:[| x; y |])
  in
  let noisy_between a b =
    let z = Pose2.ominus truth.(b) truth.(a) in
    Pose2.retract z
      (Array.init 3 (fun _ -> Rng.uniform rng ~lo:(-0.02) ~hi:0.02))
  in
  let params = { Smoother.relin_threshold = 1e-5; max_relin_passes = 10; window = None } in
  let sm = Smoother.create ~params () in
  let g = Graph.create () in
  let vname i = Printf.sprintf "x%d" i in
  let add_both i value =
    Smoother.add_variable sm (vname i) value;
    Graph.add_variable g (vname i) value
  in
  let factor_both f =
    Smoother.add_factor sm f;
    Graph.add_factor g f
  in
  add_both 0 (Var.Pose2 truth.(0));
  factor_both (Orianna_factors.Pose_factors.prior2 ~name:"p0" ~var:(vname 0) ~z:truth.(0) ~sigma:0.01);
  Smoother.update sm;
  for i = 1 to n - 1 do
    let z = noisy_between (i - 1) i in
    (* Dead-reckoned initial estimate. *)
    let init =
      match Smoother.estimate sm (vname (i - 1)) with
      | Var.Pose2 prev -> Var.Pose2 (Pose2.oplus prev z)
      | _ -> assert false
    in
    add_both i init;
    factor_both
      (Orianna_factors.Pose_factors.between2
         ~name:(Printf.sprintf "o%d" i)
         ~a:(vname (i - 1)) ~b:(vname i) ~z ~sigma:0.05);
    if i = n - 1 then
      factor_both
        (Orianna_factors.Pose_factors.between2 ~name:"loop" ~a:(vname 0) ~b:(vname i)
           ~z:(noisy_between 0 i) ~sigma:0.05);
    Smoother.update sm
  done;
  let report = Optimizer.optimize g in
  Alcotest.(check bool) "batch converged" true report.Optimizer.converged;
  List.iter
    (fun v ->
      let d = Var.local (Graph.value g v) (Smoother.estimate sm v) in
      Alcotest.(check bool)
        (Printf.sprintf "%s within 1e-6 of GN (|d| = %g)" v (Vec.norm d))
        true
        (Vec.norm d < 1e-6))
    (Smoother.live_variables sm);
  let s = Smoother.stats sm in
  Alcotest.(check bool) "some relinearization happened" true (s.Smoother.relinearized_last >= 0)

let test_smoother_obs_counters () =
  let module Obs = Orianna_obs.Obs in
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:Obs.disable (fun () ->
      let sm = Smoother.create ~params:relin_off () in
      Smoother.add_variable sm "a" zero2;
      Smoother.add_factor sm (vector_prior ~name:"p" ~var:"a" ~z:[| 1.0; 0.0 |] ~sigma:0.5);
      Smoother.update sm;
      Smoother.add_variable sm "b" zero2;
      Smoother.add_factor sm (vector_between ~name:"ab" ~a:"a" ~b:"b" ~z:[| 1.0; 1.0 |] ~sigma:0.3);
      Smoother.update sm;
      Alcotest.(check int) "updates counter" 2 (Obs.counter "fg.incremental.updates");
      Alcotest.(check bool) "affected counter" true (Obs.counter "fg.incremental.affected" >= 3);
      Alcotest.(check bool) "affected fraction histogram" true
        (List.mem_assoc "fg.incremental.affected_fraction" (Obs.histograms ())))

let test_smoother_duplicate_and_unknown () =
  let sm = Smoother.create () in
  Smoother.add_variable sm "x" zero2;
  Alcotest.(check bool) "duplicate rejected" true
    (try
       Smoother.add_variable sm "x" zero2;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown rejected" true
    (try
       Smoother.add_factor sm (vector_prior ~name:"p" ~var:"ghost" ~z:[| 0.0; 0.0 |] ~sigma:1.0);
       false
     with Invalid_argument _ -> true)

(* ---------- Factor validation ---------- *)

let test_factor_sigma_mismatch () =
  Alcotest.check_raises "sigma mismatch"
    (Invalid_argument "Factor.native bad: 2 sigmas for error dim 3") (fun () ->
      ignore
        (Factor.native ~name:"bad" ~vars:[ "x" ] ~sigmas:[| 1.0; 1.0 |] ~error_dim:3
           (fun _ -> ([| 0.0; 0.0; 0.0 |], []))))

let test_factor_undeclared_variable () =
  Alcotest.check_raises "undeclared"
    (Invalid_argument "Factor.symbolic f: expression mentions undeclared y") (fun () ->
      ignore
        (Factor.symbolic ~name:"f" ~vars:[ "x" ] ~sigmas:[| 1.0 |]
           [ Expr.(vec_var "x" - vec_var "y") ]))

let test_factor_whitening () =
  let f = vector_prior ~name:"p" ~var:"x" ~z:[| 0.0 |] ~sigma:0.5 in
  let lookup _ = Var.Vector [| 2.0 |] in
  let err, blocks = Factor.linearize f lookup in
  check_vec "whitened error" [| 4.0 |] err;
  let _, j = List.hd blocks in
  Alcotest.(check (float 1e-12)) "whitened jacobian" 2.0 (Mat.get j 0 0)

let () =
  Alcotest.run "fg"
    [
      ( "var",
        [
          Alcotest.test_case "dims" `Quick test_var_dims;
          Alcotest.test_case "retract/local" `Quick test_var_retract_local;
          Alcotest.test_case "kind mismatch" `Quick test_var_kind_mismatch;
        ] );
      ( "graph",
        [
          Alcotest.test_case "duplicate variable" `Quick test_graph_duplicate_variable;
          Alcotest.test_case "unknown factor var" `Quick test_graph_unknown_factor_var;
          Alcotest.test_case "error" `Quick test_graph_error;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "permutations" `Quick test_ordering_permutations;
          Alcotest.test_case "min degree leaves first" `Quick test_min_degree_prefers_leaves;
        ] );
      ( "elimination",
        [
          Alcotest.test_case "matches dense" `Quick test_elimination_matches_dense;
          Alcotest.test_case "census" `Quick test_elimination_census;
          Alcotest.test_case "R triangular + RtR=AtA" `Quick test_elimination_r_is_triangular;
          Alcotest.test_case "underconstrained" `Quick test_elimination_underconstrained;
          Alcotest.test_case "cholesky matches qr" `Quick test_cholesky_matches_qr;
          Alcotest.test_case "cholesky cheaper" `Quick test_cholesky_cheaper;
          Alcotest.test_case "cholesky pose graph" `Quick test_cholesky_pose_graph;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "linear one step" `Quick test_optimizer_linear_problem_one_step;
          Alcotest.test_case "pose3 chain" `Quick test_optimizer_pose3_chain;
          Alcotest.test_case "LM bad init" `Quick test_optimizer_lm_on_bad_init;
          Alcotest.test_case "macs counted" `Quick test_optimizer_macs_counted;
        ] );
      ( "factor",
        [
          Alcotest.test_case "sigma mismatch" `Quick test_factor_sigma_mismatch;
          Alcotest.test_case "undeclared variable" `Quick test_factor_undeclared_variable;
          Alcotest.test_case "whitening" `Quick test_factor_whitening;
        ] );
      ( "robust",
        [
          Alcotest.test_case "weights" `Quick test_robust_weights;
          Alcotest.test_case "scales consistently" `Quick test_robustify_scales_consistently;
          Alcotest.test_case "rejects outlier" `Quick test_robust_rejects_outlier;
          Alcotest.test_case "bad threshold" `Quick test_robust_bad_threshold;
        ] );
      ( "marginals",
        [
          Alcotest.test_case "matches dense inverse" `Quick test_marginals_match_dense_inverse;
          Alcotest.test_case "prior tightens" `Quick test_marginals_prior_tightens;
          Alcotest.test_case "unknown var" `Quick test_marginals_unknown_var;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "matches batch" `Quick test_incremental_matches_batch;
          Alcotest.test_case "locality" `Quick test_incremental_locality;
          Alcotest.test_case "loop closure" `Quick test_incremental_loop_closure_reaches_root;
          Alcotest.test_case "duplicate var" `Quick test_incremental_duplicate_var;
          Alcotest.test_case "unknown var" `Quick test_incremental_unknown_var;
        ] );
      ( "smoother",
        [
          Alcotest.test_case "linear exact" `Quick test_smoother_linear_exact;
          Alcotest.test_case "marginalization linear exact" `Quick
            test_smoother_marginalization_linear_exact;
          Alcotest.test_case "relin matches Gauss-Newton" `Quick
            test_smoother_relin_matches_gauss_newton;
          Alcotest.test_case "obs counters" `Quick test_smoother_obs_counters;
          Alcotest.test_case "duplicate and unknown" `Quick test_smoother_duplicate_and_unknown;
        ] );
    ]
