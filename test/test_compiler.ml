open Orianna_linalg
open Orianna_lie
open Orianna_fg
open Orianna_factors
open Orianna_isa
open Orianna_util
module Compile = Orianna_compiler.Compile

let check_vec msg ?(eps = 1e-8) a b =
  if not (Vec.equal ~eps a b) then
    Alcotest.failf "%s: %a vs %a" msg (fun ppf -> Vec.pp ppf) a (fun ppf -> Vec.pp ppf) b

(* A small 3D localization graph mixing symbolic and native factors. *)
let slam3d_graph seed =
  let rng = Rng.of_int seed in
  let truth =
    Array.init 4 (fun i ->
        Pose3.of_phi_t
          [| 0.0; 0.0; 0.4 *. float_of_int i |]
          [| float_of_int i; 0.5 *. float_of_int i; 0.0 |])
  in
  let landmark = [| 2.0; -1.0; 1.5 |] in
  let g = Graph.create () in
  Array.iteri
    (fun i p ->
      let noise = Array.init 6 (fun _ -> Rng.gaussian_sigma rng ~sigma:0.08) in
      Graph.add_variable g (Printf.sprintf "x%d" i) (Var.Pose3 (Pose3.retract p noise)))
    truth;
  Graph.add_variable g "l0" (Var.Vector (Vec.add landmark [| 0.1; -0.1; 0.05 |]));
  Graph.add_factor g (Pose_factors.prior3 ~name:"prior" ~var:"x0" ~z:truth.(0) ~sigma:0.01);
  for i = 0 to 2 do
    let z = Pose3.ominus truth.(i + 1) truth.(i) in
    Graph.add_factor g
      (Pose_factors.between3
         ~name:(Printf.sprintf "odo%d" i)
         ~a:(Printf.sprintf "x%d" i)
         ~b:(Printf.sprintf "x%d" (i + 1))
         ~z ~sigma:0.05)
  done;
  Graph.add_factor g (Pose_factors.gps3 ~name:"gps" ~var:"x2" ~z:(Pose3.translation truth.(2)) ~sigma:0.1);
  Array.iteri
    (fun i p ->
      let z = Mat.mul_vec (Mat.transpose (Pose3.rotation p)) (Vec.sub landmark (Pose3.translation p)) in
      Graph.add_factor g
        (Pose_factors.lidar_landmark3 ~name:(Printf.sprintf "lidar%d" i) ~pose:(Printf.sprintf "x%d" i)
           ~landmark:"l0" ~z ~sigma:0.05))
    truth;
  g

(* A control graph with native factors only. *)
let control_graph () =
  let g = Graph.create () in
  let a_mat, b_mat = Motion_factors.double_integrator ~d:2 ~dt:0.1 in
  let horizon = 4 in
  for k = 0 to horizon do
    Graph.add_variable g (Printf.sprintf "x%d" k) (Var.Vector (Vec.create 4))
  done;
  for k = 0 to horizon - 1 do
    Graph.add_variable g (Printf.sprintf "u%d" k) (Var.Vector (Vec.create 2))
  done;
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"init" ~var:"x0" ~target:[| 1.0; 1.0; 0.0; 0.0 |]
       ~sigmas:(Array.make 4 0.001));
  for k = 0 to horizon - 1 do
    Graph.add_factor g
      (Motion_factors.dynamics ~name:(Printf.sprintf "dyn%d" k) ~x_prev:(Printf.sprintf "x%d" k)
         ~u:(Printf.sprintf "u%d" k)
         ~x_next:(Printf.sprintf "x%d" (k + 1))
         ~a_mat ~b_mat ~sigma:0.01);
    Graph.add_factor g
      (Motion_factors.input_cost ~name:(Printf.sprintf "cost-u%d" k) ~var:(Printf.sprintf "u%d" k)
         ~sigmas:(Array.make 2 1.0))
  done;
  Graph.add_factor g
    (Motion_factors.goal ~name:"goal" ~var:(Printf.sprintf "x%d" horizon)
       ~target:[| 0.0; 0.0; 0.0; 0.0 |] ~sigma:0.01);
  g

let compiled_matches_solver graph ordering =
  let program = Compile.compile ~ordering graph in
  Program.validate program;
  let compiled = Program.run program in
  let reference = Optimizer.solve_once ~ordering graph in
  List.iter
    (fun (v, d) -> check_vec ("delta " ^ v) ~eps:1e-7 (List.assoc v reference) d)
    compiled

let test_compiled_slam3d_matches () =
  List.iter
    (fun seed ->
      List.iter (compiled_matches_solver (slam3d_graph seed))
        [ Ordering.Natural; Ordering.Min_degree; Ordering.Reverse ])
    [ 1; 7 ]

let test_compiled_control_matches () = compiled_matches_solver (control_graph ()) Ordering.Min_degree

let test_compiled_camera_graph_matches () =
  (* Native camera factors in the loop. *)
  let g = Graph.create () in
  let pose = Pose3.of_phi_t [| 0.02; -0.05; 0.1 |] [| 0.1; 0.2; 0.0 |] in
  let lm = [| 0.5; -0.3; 4.0 |] in
  Graph.add_variable g "x0" (Var.Pose3 pose);
  Graph.add_variable g "l0" (Var.Vector (Vec.add lm [| 0.2; 0.1; -0.3 |]));
  Graph.add_factor g (Pose_factors.prior3 ~name:"prior" ~var:"x0" ~z:pose ~sigma:0.001);
  let k = Vision_factors.default_intrinsics in
  List.iter
    (fun (dx, name) ->
      let p = Pose3.retract pose [| 0.0; 0.0; 0.0; dx; 0.0; 0.0 |] in
      let p_cam = Mat.mul_vec (Mat.transpose (Pose3.rotation p)) (Vec.sub lm (Pose3.translation p)) in
      let z = Vision_factors.project k p_cam in
      Graph.add_variable g name (Var.Pose3 p);
      Graph.add_factor g (Pose_factors.between3 ~name:("odo" ^ name) ~a:"x0" ~b:name
           ~z:(Pose3.ominus p pose) ~sigma:0.01);
      Graph.add_factor g (Vision_factors.camera ~name:("cam" ^ name) ~pose:name ~landmark:"l0" ~z ~sigma:1.0 ()))
    [ (0.5, "x1"); (-0.5, "x2") ];
  Graph.add_factor g
    (Vision_factors.camera ~name:"cam0" ~pose:"x0" ~landmark:"l0"
       ~z:(Vision_factors.project k (Mat.mul_vec (Mat.transpose (Pose3.rotation pose)) (Vec.sub lm (Pose3.translation pose))))
       ~sigma:1.0 ());
  compiled_matches_solver g Ordering.Min_degree

let test_iterate_converges_like_optimizer () =
  let g1 = slam3d_graph 3 in
  let g2 = slam3d_graph 3 in
  let report = Optimizer.optimize ~params:{ Optimizer.default_params with ordering = Ordering.Min_degree } g1 in
  let iters = Compile.iterate ~ordering:Ordering.Min_degree g2 in
  Alcotest.(check bool) "iterations sane" true (iters <= 25);
  (* Both paths must land on the same optimum. *)
  List.iter
    (fun v ->
      let d = Var.distance (Graph.value g1 v) (Graph.value g2 v) in
      Alcotest.(check bool) (Printf.sprintf "same optimum at %s (%g)" v d) true (d < 1e-6))
    (Graph.variables g1);
  Alcotest.(check bool) "converged reference" true report.Optimizer.converged

let test_compile_iterations_matches_stepwise () =
  (* The unrolled multi-iteration program (with on-accelerator update
     phases) ends where step-by-step recompilation ends: its outputs
     are the deltas the software solver computes after k-1 applied
     iterations. *)
  List.iter
    (fun iterations ->
      let g_prog = slam3d_graph 21 in
      let program = Compile.compile_iterations ~iterations g_prog in
      Program.validate program;
      let unrolled = Program.run program in
      (* Reference: apply k-1 software GN steps, then one more solve. *)
      let g_ref = slam3d_graph 21 in
      for _ = 1 to iterations - 1 do
        let deltas = Optimizer.solve_once ~ordering:Ordering.Min_degree g_ref in
        List.iter
          (fun (v, d) -> Graph.set_value g_ref v (Var.retract (Graph.value g_ref v) d))
          deltas
      done;
      let reference = Optimizer.solve_once ~ordering:Ordering.Min_degree g_ref in
      List.iter
        (fun (v, d) ->
          check_vec (Printf.sprintf "iter %d delta %s" iterations v) ~eps:1e-6
            (List.assoc v reference) d)
        unrolled)
    [ 1; 2; 3 ]

let test_compile_iterations_grows_linearly () =
  let g = slam3d_graph 23 in
  let one = Program.length (Compile.compile_iterations ~iterations:1 g) in
  let three = Program.length (Compile.compile_iterations ~iterations:3 g) in
  Alcotest.(check bool)
    (Printf.sprintf "3 iterations ~ 3x instructions (%d vs %d)" one three)
    true
    (three > 2 * one && three < 4 * one)

let test_compile_iterations_rejects_zero () =
  Alcotest.check_raises "zero iterations"
    (Orianna_util.Error.Error
       {
         Orianna_util.Error.phase = Orianna_util.Error.Compile;
         context = [ "compile_iterations" ];
         message = "need at least one iteration";
       })
    (fun () -> ignore (Compile.compile_iterations ~iterations:0 (slam3d_graph 1)))

let test_program_structure () =
  let g = slam3d_graph 5 in
  let p = Compile.compile g in
  let s = Program.stats p in
  Alcotest.(check bool) "has instructions" true (s.Program.instructions > 50);
  let phase_count ph = Option.value ~default:0 (List.assoc_opt ph s.Program.by_phase) in
  Alcotest.(check bool) "construct phase" true (phase_count Instr.Construct > 0);
  Alcotest.(check bool) "decompose phase" true (phase_count Instr.Decompose > 0);
  Alcotest.(check bool) "backsub phase" true (phase_count Instr.Backsub > 0);
  Alcotest.(check bool) "has QR ops" true (List.mem_assoc "QR" s.Program.by_opcode);
  Alcotest.(check bool) "parallel width > 1" true (s.Program.max_width > 1);
  Alcotest.(check bool) "critical path shorter than program" true
    (s.Program.critical_path < s.Program.instructions)

let test_cse_shares_transposes () =
  (* Two between factors sharing variable x1: Rᵀ(x1) appears in both
     forward passes and again in the backward passes — value numbering
     must collapse the duplicates within one factor's stream. *)
  let g = slam3d_graph 9 in
  let p = Compile.compile g in
  let s = Program.stats p in
  let rt = Option.value ~default:0 (List.assoc_opt "RT" s.Program.by_opcode) in
  (* 4 between/prior-style factors with shared subexpressions: without
     CSE this would be far larger. *)
  Alcotest.(check bool) (Printf.sprintf "few RT ops (%d)" rt) true (rt <= 24)

let test_concat_and_application () =
  let loc = slam3d_graph 11 in
  let ctrl = control_graph () in
  let p = Compile.compile_application [ ("loc", loc); ("ctrl", ctrl) ] in
  Program.validate p;
  let deltas = Program.run p in
  let ref_loc = Optimizer.solve_once ~ordering:Ordering.Min_degree loc in
  let ref_ctrl = Optimizer.solve_once ~ordering:Ordering.Min_degree ctrl in
  List.iter
    (fun (v, d) -> check_vec ("loc/" ^ v) ~eps:1e-7 d (List.assoc ("loc/" ^ v) deltas))
    ref_loc;
  List.iter
    (fun (v, d) -> check_vec ("ctrl/" ^ v) ~eps:1e-7 d (List.assoc ("ctrl/" ^ v) deltas))
    ref_ctrl;
  (* Both algorithm ids present, for coarse-grained OoO. *)
  let algos =
    Array.fold_left (fun acc (i : Instr.t) -> if List.mem i.Instr.algo acc then acc else i.Instr.algo :: acc)
      [] p.Program.instrs
  in
  Alcotest.(check int) "two algorithms" 2 (List.length algos)

let test_op_sizes_census () =
  let g = slam3d_graph 13 in
  let p = Compile.compile g in
  let decompose_sizes = Program.op_sizes p ~phase:Instr.Decompose () in
  Alcotest.(check bool) "decompose ops exist" true (List.length decompose_sizes > 0);
  (* Factor-graph elimination works on small dense blocks: nothing
     anywhere near the full dense system size. *)
  List.iter
    (fun (r, c) -> Alcotest.(check bool) "small blocks" true (r <= 40 && c <= 40))
    decompose_sizes

let test_validate_rejects_bad_program () =
  let bad =
    {
      Program.instrs =
        [|
          {
            Instr.id = 0;
            op = Instr.Vadd;
            srcs = [| 1 |];
            rows = 1;
            cols = 1;
            phase = Instr.Construct;
            algo = 0;
            tag = "";
          };
        |];
      outputs = [];
    }
  in
  Alcotest.(check bool) "rejects future read" true
    (try
       Program.validate bad;
       false
     with Failure _ -> true)

let () =
  Alcotest.run "compiler"
    [
      ( "correctness",
        [
          Alcotest.test_case "slam3d matches solver" `Quick test_compiled_slam3d_matches;
          Alcotest.test_case "control matches solver" `Quick test_compiled_control_matches;
          Alcotest.test_case "camera graph matches" `Quick test_compiled_camera_graph_matches;
          Alcotest.test_case "iterate converges" `Quick test_iterate_converges_like_optimizer;
          Alcotest.test_case "unrolled iterations match" `Quick test_compile_iterations_matches_stepwise;
          Alcotest.test_case "unrolled growth" `Quick test_compile_iterations_grows_linearly;
          Alcotest.test_case "rejects zero iterations" `Quick test_compile_iterations_rejects_zero;
        ] );
      ( "structure",
        [
          Alcotest.test_case "phases and stats" `Quick test_program_structure;
          Alcotest.test_case "CSE shares transposes" `Quick test_cse_shares_transposes;
          Alcotest.test_case "application concat" `Quick test_concat_and_application;
          Alcotest.test_case "op size census" `Quick test_op_sizes_census;
          Alcotest.test_case "validate rejects bad" `Quick test_validate_rejects_bad_program;
        ] );
    ]
