(* Tests for the domain pool (Orianna_par.Pool) and for the contract
   that parallelisation did not change a single observable bit:

   - [Pool.parallel_map]/[parallel_map_reduce] are bit-identical at
     jobs = 1, 2 and 4, preserve input order, re-raise the first
     failing slot's exception, and degrade to sequential execution
     when nested;
   - [Rng.split_n] equals repeated in-loop splitting;
   - the array-based scheduler hot path ([Schedule.run]) matches a
     verbatim copy of the seed's hashtable-based implementation on
     random compiled applications, across all three issue policies;
   - fault campaigns and DSE produce identical summaries at any job
     count, and the shared DSE cache memoizes candidate evaluation;
   - [Obs] counters are exact under concurrent counting from several
     domains. *)

open Orianna_isa
open Orianna_hw
open Orianna_sim
open Orianna_util
open Orianna_apps
module Pool = Orianna_par.Pool
module Compile = Orianna_compiler.Compile
module Campaign = Orianna_fault.Campaign
module Obs = Orianna_obs.Obs

(* ---------- parallel_map combinators ---------- *)

let test_parallel_map_identical () =
  let xs = Array.init 257 Fun.id in
  let f i = Printf.sprintf "%d:%.17g" (i * i) (sin (float_of_int i)) in
  let expected = Array.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (array string))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Pool.parallel_map ~jobs f xs))
    [ 1; 2; 4 ]

let test_parallel_map_order () =
  (* Results land in their input slot even though slots are claimed
     dynamically by whichever lane is free. *)
  let xs = Array.init 1000 Fun.id in
  Alcotest.(check (array int)) "identity preserved" xs (Pool.parallel_map ~jobs:4 Fun.id xs)

let test_exception_first_slot () =
  let raised =
    try
      ignore
        (Pool.parallel_map ~jobs:4
           (fun i -> if i >= 50 then failwith (string_of_int i) else i)
           (Array.init 100 Fun.id));
      None
    with Failure msg -> Some msg
  in
  (* Slots 50..99 all fail; the re-raised exception must be the first
     one in input order, independent of completion order. *)
  Alcotest.(check (option string)) "first failing slot re-raised" (Some "50") raised

let test_map_reduce_deterministic () =
  let xs = Array.init 64 (fun i -> float_of_int (i + 1)) in
  let map x = sin x in
  (* Deliberately non-associative: only an in-order fold gets this
     right, which is what the combinator guarantees. *)
  let reduce a b = (a *. 0.5) +. b in
  let expected = Array.fold_left reduce 1.0 (Array.map map xs) in
  List.iter
    (fun jobs ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Pool.parallel_map_reduce ~jobs ~map ~reduce ~init:1.0 xs))
    [ 1; 2; 4 ]

let test_nested_runs_sequentially () =
  (* An inner parallel_map issued from inside a pool task must not
     deadlock — it falls back to sequential execution. *)
  Pool.set_default_jobs 4;
  let outer =
    Pool.parallel_map
      (fun i ->
        Array.fold_left ( + ) 0 (Pool.parallel_map (fun j -> (i * 100) + j) (Array.init 10 Fun.id)))
      (Array.init 8 Fun.id)
  in
  Pool.set_default_jobs 1;
  let expected =
    Array.init 8 (fun i -> Array.fold_left ( + ) 0 (Array.init 10 (fun j -> (i * 100) + j)))
  in
  Alcotest.(check (array int)) "nested map correct" expected outer

let prop_chunk_ranges =
  QCheck.Test.make ~name:"pool: chunk_ranges is a balanced contiguous partition" ~count:500
    QCheck.(pair small_nat small_nat)
    (fun (chunks, n) ->
      let ranges = Pool.chunk_ranges ~chunks ~n in
      if n = 0 then Array.length ranges = 0
      else begin
        let k = Array.length ranges in
        let contiguous = ref (fst ranges.(0) = 0 && snd ranges.(k - 1) = n) in
        for c = 1 to k - 1 do
          if fst ranges.(c) <> snd ranges.(c - 1) then contiguous := false
        done;
        let sizes = Array.map (fun (lo, hi) -> hi - lo) ranges in
        let mn = Array.fold_left min max_int sizes and mx = Array.fold_left max 0 sizes in
        k >= 1 && k <= max 1 chunks && k <= n && !contiguous && mn >= 1 && mx - mn <= 1
      end)

(* ---------- RNG stream splitting ---------- *)

let test_split_n_matches_split_loop () =
  let a = Rng.of_int 1234 and b = Rng.of_int 1234 in
  let sa = Rng.split_n a 8 in
  let sb = Array.make 8 b in
  for i = 0 to 7 do
    sb.(i) <- Rng.split b
  done;
  Array.iteri
    (fun i ra ->
      for draw = 0 to 2 do
        Alcotest.(check int64)
          (Printf.sprintf "stream %d draw %d" i draw)
          (Rng.int64 sb.(i)) (Rng.int64 ra)
      done)
    sa;
  (* The parent stream advanced identically in both styles. *)
  Alcotest.(check int64) "parent state aligned" (Rng.int64 b) (Rng.int64 a)

(* ---------- differential scheduler check ---------- *)

(* Verbatim copy of the seed's hashtable-based scheduler (telemetry
   stripped), kept as the reference the rewritten array-based hot path
   is differenced against. *)
module Ref_sched = struct
  module Heap = Orianna_util.Heap

  let class_index cls =
    let rec find i = function
      | [] -> assert false
      | c :: rest -> if c = cls then i else find (i + 1) rest
    in
    find 0 Unit_model.all_classes

  let num_classes = List.length Unit_model.all_classes

  let priorities (p : Program.t) latency_of =
    let n = Array.length p.Program.instrs in
    let prio = Array.make n 0 in
    for i = n - 1 downto 0 do
      let ins = p.Program.instrs.(i) in
      prio.(i) <- max prio.(i) (latency_of i);
      Array.iter (fun s -> prio.(s) <- max prio.(s) (prio.(i) + latency_of s)) ins.Instr.srcs
    done;
    prio

  let schedule_ooo (p : Program.t) ~latency_of ~prio ~counts ~starts ~finishes ~ids ~t0 =
    let in_subset = Hashtbl.create (Array.length ids) in
    Array.iter (fun id -> Hashtbl.add in_subset id ()) ids;
    let indeg = Hashtbl.create (Array.length ids) in
    let children = Hashtbl.create (Array.length ids) in
    Array.iter
      (fun id ->
        let ins = p.Program.instrs.(id) in
        let deps =
          Array.to_list ins.Instr.srcs |> List.filter (fun s -> Hashtbl.mem in_subset s)
        in
        Hashtbl.replace indeg id (List.length deps);
        List.iter
          (fun s ->
            Hashtbl.replace children s
              (id :: Option.value ~default:[] (Hashtbl.find_opt children s)))
          deps)
      ids;
    let arrivals =
      Array.init num_classes (fun _ -> Heap.create ~cmp:(fun (ta, _) (tb, _) -> compare ta tb))
    in
    let ready =
      Array.init num_classes (fun _ -> Heap.create ~cmp:(fun (pa, _) (pb, _) -> compare pb pa))
    in
    let free : int array array =
      Array.of_list
        (List.map (fun cls -> Array.make (List.assoc cls counts) t0) Unit_model.all_classes)
    in
    let ready_dep_time = Hashtbl.create (Array.length ids) in
    let arrive id t =
      let cls = class_index (Unit_model.class_of_op p.Program.instrs.(id).Instr.op) in
      Heap.push arrivals.(cls) (max t t0, id)
    in
    Array.iter (fun id -> if Hashtbl.find indeg id = 0 then arrive id t0) ids;
    let remaining = ref (Array.length ids) in
    let t = ref t0 in
    let makespan = ref t0 in
    while !remaining > 0 do
      for c = 0 to num_classes - 1 do
        let continue_ = ref true in
        while !continue_ do
          match Heap.peek arrivals.(c) with
          | Some (ta, id) when ta <= !t ->
              ignore (Heap.pop arrivals.(c));
              Heap.push ready.(c) (prio.(id), id)
          | Some _ | None -> continue_ := false
        done
      done;
      let scheduled_any = ref false in
      for c = 0 to num_classes - 1 do
        let continue_ = ref true in
        while !continue_ && not (Heap.is_empty ready.(c)) do
          let best = ref (-1) in
          Array.iteri
            (fun k ft -> if ft <= !t && (!best < 0 || ft < free.(c).(!best)) then best := k)
            free.(c);
          if !best < 0 then continue_ := false
          else begin
            match Heap.pop ready.(c) with
            | None -> continue_ := false
            | Some (_, id) ->
                let dep_ready = Option.value ~default:t0 (Hashtbl.find_opt ready_dep_time id) in
                let start = max !t dep_ready in
                let lat = latency_of id in
                let finish = start + lat in
                starts.(id) <- start;
                finishes.(id) <- finish;
                free.(c).(!best) <- finish;
                makespan := max !makespan finish;
                decr remaining;
                scheduled_any := true;
                List.iter
                  (fun child ->
                    let d = Hashtbl.find indeg child - 1 in
                    Hashtbl.replace indeg child d;
                    let prev =
                      Option.value ~default:t0 (Hashtbl.find_opt ready_dep_time child)
                    in
                    Hashtbl.replace ready_dep_time child (max prev finish);
                    if d = 0 then arrive child finish)
                  (Option.value ~default:[] (Hashtbl.find_opt children id))
          end
        done
      done;
      if !remaining > 0 && not !scheduled_any then begin
        let next = ref max_int in
        for c = 0 to num_classes - 1 do
          (match Heap.peek arrivals.(c) with
          | Some (ta, _) when ta > !t -> next := min !next ta
          | _ -> ());
          if not (Heap.is_empty ready.(c)) then
            Array.iter (fun ft -> if ft > !t then next := min !next ft) free.(c)
        done;
        if !next = max_int then failwith "reference scheduler deadlocked";
        t := !next
      end
    done;
    !makespan

  let schedule_in_order (p : Program.t) ~latency_of ~starts ~finishes =
    let makespan = ref 0 in
    Array.iter
      (fun (ins : Instr.t) ->
        let id = ins.Instr.id in
        let dep_ready = Array.fold_left (fun acc s -> max acc finishes.(s)) 0 ins.Instr.srcs in
        let start = max dep_ready !makespan in
        let finish = start + latency_of id in
        starts.(id) <- start;
        finishes.(id) <- finish;
        makespan := finish)
      p.Program.instrs;
    !makespan

  (* Starts, finishes and makespan under the seed's dispatch logic
     (nominal latencies, critical-path priority). *)
  let run ~accel ~policy (p : Program.t) =
    let n = Array.length p.Program.instrs in
    let src_shape id = (p.Program.instrs.(id).Instr.rows, p.Program.instrs.(id).Instr.cols) in
    let latency_of id =
      let ins = p.Program.instrs.(id) in
      Unit_model.latency
        (Unit_model.class_of_op ins.Instr.op)
        ~qr_rotators:accel.Accel.qr_rotators ins ~src_shape
    in
    let counts = accel.Accel.counts in
    let starts = Array.make n 0 and finishes = Array.make n 0 in
    let makespan =
      match policy with
      | Schedule.In_order -> schedule_in_order p ~latency_of ~starts ~finishes
      | Schedule.Ooo_full ->
          let prio = priorities p latency_of in
          schedule_ooo p ~latency_of ~prio ~counts ~starts ~finishes ~ids:(Array.init n Fun.id)
            ~t0:0
      | Schedule.Ooo_fine ->
          let prio = priorities p latency_of in
          let algos =
            Array.fold_left
              (fun acc (i : Instr.t) ->
                if List.mem i.Instr.algo acc then acc else i.Instr.algo :: acc)
              [] p.Program.instrs
            |> List.rev
          in
          List.fold_left
            (fun t0 algo ->
              let ids =
                Array.of_list
                  (Array.to_list p.Program.instrs
                  |> List.filter_map (fun (i : Instr.t) ->
                         if i.Instr.algo = algo then Some i.Instr.id else None))
              in
              schedule_ooo p ~latency_of ~prio ~counts ~starts ~finishes ~ids ~t0)
            0 algos
    in
    (starts, finishes, makespan)
end

let apps = Array.of_list App.all

let accel_variant i =
  let base = Accel.base () in
  match i mod 4 with
  | 0 -> base
  | 1 -> Accel.with_extra base Unit_model.Matmul
  | 2 -> Accel.with_extra (Accel.with_extra base Unit_model.Matmul) Unit_model.Qr_unit
  | _ ->
      List.fold_left Accel.with_extra base
        [ Unit_model.Matmul; Unit_model.Matmul; Unit_model.Vector_alu; Unit_model.Dma ]

let sched_arb =
  QCheck.(
    make
      Gen.(triple (int_range 0 1_000_000) (int_range 0 3) (int_range 0 3))
      ~print:Print.(triple int int int))

let prop_schedule_matches_seed_reference =
  QCheck.Test.make ~name:"schedule: array hot path = seed hashtable reference (all policies)"
    ~count:12 sched_arb (fun (seed, app_i, accel_i) ->
      let app = apps.(app_i mod Array.length apps) in
      let p = Compile.compile_application (app.App.graphs (Rng.of_int seed)) in
      let accel = accel_variant accel_i in
      List.for_all
        (fun policy ->
          let r = Schedule.run ~accel ~policy p in
          let starts, finishes, makespan = Ref_sched.run ~accel ~policy p in
          r.Schedule.cycles = makespan
          && r.Schedule.starts = starts
          && r.Schedule.finishes = finishes
          && Schedule.check_invariants ~accel p r = Ok ())
        [ Schedule.In_order; Schedule.Ooo_fine; Schedule.Ooo_full ])

(* ---------- campaign / DSE job-count invariance ---------- *)

let test_campaign_identical_across_jobs () =
  let run_with jobs =
    Pool.set_default_jobs jobs;
    let graphs = App.mobile_robot.App.graphs (Rng.of_int 7) in
    let program = Compile.compile_application graphs in
    let accel = Accel.with_extra (Accel.base ()) Unit_model.Matmul in
    Campaign.run
      ~config:{ Campaign.default_config with Campaign.missions = 24 }
      ~rng:(Rng.of_int 42) ~graphs ~program ~accel ()
  in
  let s1 = run_with 1 in
  let s4 = run_with 4 in
  Pool.set_default_jobs 1;
  Alcotest.(check bool) "summaries identical at -j1 and -j4" true (s1 = s4)

let test_dse_shared_cache_memoizes () =
  Pool.set_default_jobs 1;
  Obs.enable ();
  Obs.reset ();
  let evals = ref 0 in
  let evaluate accel =
    incr evals;
    100.0 /. (1.0 +. float_of_int (Accel.count accel Unit_model.Matmul))
  in
  let cache = Dse.cache () in
  let r1 = Dse.optimize ~budget:Resource.zc706 ~evaluate ~cache () in
  let n1 = !evals in
  let r2 = Dse.optimize ~budget:Resource.zc706 ~evaluate ~cache () in
  let n2 = !evals - n1 in
  Obs.disable ();
  Alcotest.(check bool) "results identical" true (r1 = r2);
  Alcotest.(check bool) "first run evaluated something" true (n1 > 0);
  Alcotest.(check int) "second run fully served from cache" 0 n2;
  Alcotest.(check bool) "dse.candidates.cached counter bumped" true
    (Obs.counter "dse.candidates.cached" > 0)

(* ---------- Obs under concurrent counting ---------- *)

let test_obs_counts_exact_across_domains () =
  Obs.enable ();
  Obs.reset ();
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Obs.count "par.test.hits"
            done))
  in
  List.iter Domain.join domains;
  let total = Obs.counter "par.test.hits" in
  Obs.disable ();
  Alcotest.(check int) "4 domains x 1000 increments" 4000 total

(* ---------- pool instrumentation ---------- *)

(* With telemetry on, every pool run leaves a [run_record]: lane slot
   counts must add up to the submitted items, the timeline must be
   ordered, and per-run registry metrics must appear. *)
let test_pool_run_records () =
  Obs.set_clock (fun () -> Unix.gettimeofday ());
  Obs.enable ();
  Obs.reset ();
  ignore (Pool.drain_stats ());
  let xs = Array.init 64 Fun.id in
  let out = Pool.parallel_map ~jobs:4 (fun i -> ignore (Sys.opaque_identity (sin (float_of_int i))); i * 2) xs in
  Alcotest.(check (array int)) "result intact" (Array.map (fun i -> i * 2) xs) out;
  let records = Pool.drain_stats () in
  Obs.disable ();
  (match records with
  | [ r ] ->
      Alcotest.(check int) "jobs recorded" 4 r.Pool.rjobs;
      Alcotest.(check int) "items recorded" 64 r.Pool.items;
      Alcotest.(check int) "slots partition the items" 64
        (Array.fold_left (fun acc (ls : Pool.lane_stats) -> acc + ls.Pool.slots) 0 r.Pool.lanes);
      Alcotest.(check bool) "done after submit" true (r.Pool.done_s >= r.Pool.submit_s);
      Array.iter
        (fun (ls : Pool.lane_stats) ->
          Alcotest.(check bool) "busy non-negative" true (ls.Pool.busy_s >= 0.0);
          Alcotest.(check int) "one span per slot" ls.Pool.slots
            (List.length ls.Pool.slot_spans))
        r.Pool.lanes
  | rs -> Alcotest.failf "expected 1 run record, got %d" (List.length rs));
  Obs.enable ();
  Obs.reset ();
  ignore (Pool.drain_stats ());
  (* Sequential fallback (jobs = 1) still records, as a 1-lane run. *)
  ignore (Pool.parallel_map ~jobs:1 (fun i -> i + 1) xs);
  let records = Pool.drain_stats () in
  Obs.disable ();
  Obs.reset ();
  match records with
  | [ r ] ->
      Alcotest.(check int) "seq run is one lane" 1 r.Pool.rjobs;
      Alcotest.(check int) "seq slots" 64 r.Pool.lanes.(0).Pool.slots
  | rs -> Alcotest.failf "expected 1 seq run record, got %d" (List.length rs)

let test_pool_disabled_records_nothing () =
  Obs.disable ();
  Obs.reset ();
  ignore (Pool.drain_stats ());
  ignore (Pool.parallel_map ~jobs:4 (fun i -> i + 1) (Array.init 32 Fun.id));
  Alcotest.(check int) "no records while disabled" 0 (List.length (Pool.drain_stats ()))

let test_pool_chrome_events () =
  let module Chrome_trace = Orianna_obs.Chrome_trace in
  let module Json = Orianna_obs.Json in
  Obs.set_clock (fun () -> Unix.gettimeofday ());
  Obs.enable ();
  Obs.reset ();
  ignore (Pool.drain_stats ());
  ignore (Pool.parallel_map ~jobs:2 (fun i -> i + 1) (Array.init 16 Fun.id));
  let records = Pool.drain_stats () in
  Obs.disable ();
  Obs.reset ();
  let events = Pool.chrome_events records in
  let parsed = Json.parse (Chrome_trace.to_string events) in
  match Json.member "traceEvents" parsed with
  | Some (Json.Arr evs) ->
      let pids =
        List.sort_uniq compare
          (List.filter_map
             (fun e -> match Json.member "pid" e with Some (Json.Num p) -> Some (int_of_float p) | _ -> None)
             evs)
      in
      (* one Perfetto process per lane, starting at the pool's pid base *)
      Alcotest.(check (list int)) "one pid per lane"
        [ Pool.chrome_pid_base; Pool.chrome_pid_base + 1 ]
        pids;
      let durations = List.filter (fun e -> Json.member "ph" e = Some (Json.Str "X")) evs in
      Alcotest.(check int) "one slice per slot" 16 (List.length durations)
  | _ -> Alcotest.fail "missing traceEvents"

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_map bit-identical at jobs 1/2/4" `Quick
            test_parallel_map_identical;
          Alcotest.test_case "parallel_map preserves input order" `Quick test_parallel_map_order;
          Alcotest.test_case "first failing slot re-raised" `Quick test_exception_first_slot;
          Alcotest.test_case "map_reduce folds in input order" `Quick test_map_reduce_deterministic;
          Alcotest.test_case "nested parallel_map runs sequentially" `Quick
            test_nested_runs_sequentially;
          QCheck_alcotest.to_alcotest prop_chunk_ranges;
        ] );
      ( "rng",
        [
          Alcotest.test_case "split_n = repeated split" `Quick test_split_n_matches_split_loop;
        ] );
      ("schedule", [ QCheck_alcotest.to_alcotest prop_schedule_matches_seed_reference ]);
      ( "sweeps",
        [
          Alcotest.test_case "campaign identical at -j1 and -j4" `Quick
            test_campaign_identical_across_jobs;
          Alcotest.test_case "DSE shared cache memoizes candidates" `Quick
            test_dse_shared_cache_memoizes;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "run records account for every slot" `Quick test_pool_run_records;
          Alcotest.test_case "disabled registry records nothing" `Quick
            test_pool_disabled_records_nothing;
          Alcotest.test_case "chrome events: one track per lane" `Quick test_pool_chrome_events;
        ] );
      ( "obs",
        [
          Alcotest.test_case "counters exact across 4 domains" `Quick
            test_obs_counts_exact_across_domains;
        ] );
    ]
