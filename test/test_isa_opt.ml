(* Differential-equivalence harness for the instruction-stream
   optimizer (Orianna_isa.Opt).

   Every pass — and the whole pipeline — must produce programs whose
   execution yields identical final variable estimates (within 1e-9).
   The checks use the old->new register maps the passes return, so a
   failure names the *first diverging instruction* and its value
   delta, not just a mismatched output.

   Golden snapshots: per-app per-opcode instruction histograms at O0
   and O1 live in test/golden/isa_opt_<app>.json.  After an
   intentional compiler or optimizer change, regenerate them from the
   repo root with

     ORIANNA_UPDATE_GOLDEN=1 ORIANNA_GOLDEN_DIR=test/golden \
       dune exec test/test_isa_opt.exe

   and commit the diff (the histograms are deterministic: fixed seed,
   deterministic RNG, deterministic passes). *)

open Orianna_linalg
open Orianna_isa
open Orianna_util
module Compile = Orianna_compiler.Compile
module App = Orianna_apps.App
module Schedule = Orianna_sim.Schedule
module Opt_loop = Orianna_sim.Opt_loop
module Accel = Orianna_hw.Accel
module Json = Orianna_obs.Json
module Cache = Orianna_serve.Cache
module Graph = Orianna_fg.Graph
module Var = Orianna_fg.Var

let eps = 1e-9
let bench_seed = 42

(* ------------------------------------------------------------------ *)
(* Differential equivalence                                            *)

let max_delta a b =
  let ra, ca = Mat.dims a and rb, cb = Mat.dims b in
  if ra <> rb || ca <> cb then infinity
  else begin
    let d = ref 0.0 in
    for i = 0 to ra - 1 do
      for j = 0 to ca - 1 do
        d := Float.max !d (Float.abs (Mat.get a i j -. Mat.get b i j))
      done
    done;
    !d
  end

(* Execute both programs and compare every surviving intermediate
   value through the register map; on divergence, fail naming the
   first diverging instruction and the value delta. *)
let check_equivalent ~what p (p', map) =
  Program.validate p';
  let v = Program.execute p and v' = Program.execute p' in
  Array.iteri
    (fun i (ins : Instr.t) ->
      let m = map.(i) in
      if m >= 0 then begin
        let d = max_delta v.(i) v'.(m) in
        if not (d <= eps) then
          Alcotest.failf "%s: first diverging instruction i%d (%s %dx%d%s) -> new i%d: |delta| = %g"
            what i
            (Instr.opcode_name ins.Instr.op)
            ins.Instr.rows ins.Instr.cols
            (if ins.Instr.tag = "" then "" else ", " ^ ins.Instr.tag)
            m d
      end)
    p.Program.instrs;
  let out = Program.run p and out' = Program.run p' in
  List.iter
    (fun (name, va) ->
      match List.assoc_opt name out' with
      | None -> Alcotest.failf "%s: output %s missing after optimization" what name
      | Some vb ->
          if not (Vec.equal ~eps va vb) then
            Alcotest.failf "%s: final estimate %s diverges by %g" what name
              (max_delta (Mat.of_vec va) (Mat.of_vec vb)))
    out

(* Boolean form for QCheck (QCheck prints the shrunk (seed, nvars)
   counterexample itself). *)
let equivalent p (p', map) =
  let v = Program.execute p and v' = Program.execute p' in
  let ok = ref true in
  Array.iteri (fun i _ -> if map.(i) >= 0 && max_delta v.(i) v'.(map.(i)) > eps then ok := false) p.Program.instrs;
  let out = Program.run p and out' = Program.run p' in
  List.iter
    (fun (name, va) ->
      match List.assoc_opt name out' with
      | None -> ok := false
      | Some vb -> if not (Vec.equal ~eps va vb) then ok := false)
    out;
  !ok

(* ------------------------------------------------------------------ *)
(* Per-app differential tests (the four registered applications)       *)

let compiled_at_levels (app : App.t) =
  let graphs = app.App.graphs (Rng.of_int bench_seed) in
  let p0 = Compile.compile_application ~opt_level:0 graphs in
  let p1 = Compile.compile_application ~opt_level:1 graphs in
  (graphs, p0, p1)

let test_app_differential (app : App.t) () =
  let _, p0, p1 = compiled_at_levels app in
  (* The compiler wiring must be exactly the pass pipeline applied to
     the O0 stream — so the traced map from re-running the pipeline
     here is valid for the wired O1 program too. *)
  let p1', map, report = Opt.optimize_traced ~level:1 p0 in
  Alcotest.(check int32) "compile ~opt_level:1 = optimize (compile ~opt_level:0)"
    (Program.hash p1') (Program.hash p1);
  check_equivalent ~what:app.App.name p0 (p1', map);
  Alcotest.(check bool) "never grows" true (report.Opt.after <= report.Opt.before);
  (* Simulated execution: issued-instruction count at O1 <= O0. *)
  let accel = Accel.base () in
  List.iter
    (fun policy ->
      let r0 = Schedule.run ~accel ~policy p0 in
      let r1 = Schedule.run ~accel ~policy p1 in
      Alcotest.(check bool)
        (Printf.sprintf "%s issued O1 (%d) <= O0 (%d)" (Schedule.policy_name policy)
           r1.Schedule.instructions r0.Schedule.instructions)
        true
        (r1.Schedule.instructions <= r0.Schedule.instructions))
    [ Schedule.In_order; Schedule.Ooo_fine; Schedule.Ooo_full ]

let test_reduction_floor () =
  (* The CI gate's invariant, asserted in-tree as well: O1 removes at
     least 5% of instructions on at least two of the four apps. *)
  let reduced =
    List.filter
      (fun (a : App.t) ->
        let _, p0, p1 = compiled_at_levels a in
        float_of_int (Program.length p1) <= 0.95 *. float_of_int (Program.length p0))
      App.all
  in
  Alcotest.(check bool)
    (Printf.sprintf ">= 5%% reduction on >= 2 apps (got %d)" (List.length reduced))
    true
    (List.length reduced >= 2)

let test_schedule_invariants_on_optimized () =
  (* The reorder pass must stay schedule-safe: the scheduler's own
     accounting invariants (causality, stall decomposition, latency
     conformance) re-derive cleanly on an optimized stream under every
     issue policy. *)
  let p = Compile.compile_application (App.mobile_robot.App.graphs (Rng.of_int 7)) in
  let accel = Accel.base () in
  List.iter
    (fun policy ->
      let r = Schedule.run ~accel ~policy p in
      match Schedule.check_invariants ~accel p r with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" (Schedule.policy_name policy) msg)
    [ Schedule.In_order; Schedule.Ooo_fine; Schedule.Ooo_full ]

let test_stall_weighted_reorder_equivalent () =
  (* The O2 path: reorder again with measured stall attribution. *)
  let p = Compile.compile_application (App.auto_vehicle.App.graphs (Rng.of_int 3)) in
  let accel = Accel.base () in
  let r = Schedule.run ~accel ~policy:Schedule.In_order p in
  let stalls = Orianna_sim.Trace.operand_stalls p r in
  Alcotest.(check int) "stall vector length" (Program.length p) (Array.length stalls);
  check_equivalent ~what:"stall-weighted reorder" p (Opt.reorder ~stalls p);
  Alcotest.(check bool) "rejects wrong length" true
    (try
       ignore (Opt.reorder ~stalls:[| 0 |] p);
       false
     with Invalid_argument _ -> true)

let test_reoptimize_feedback_round () =
  (* Trace.reoptimize is the whole O2 feedback round (simulate ->
     attribute stalls -> reorder) shared by Pipeline and the serving
     runtime's compile path: a pure permutation, so the instruction
     count is unchanged and every final estimate is preserved. *)
  List.iter
    (fun (app : App.t) ->
      let p1 = Compile.compile_application ~opt_level:1 (app.App.graphs (Rng.of_int bench_seed)) in
      let p2 = Orianna_sim.Trace.reoptimize p1 in
      Program.validate p2;
      Alcotest.(check int)
        (app.App.name ^ ": O2 keeps instruction count")
        (Program.length p1) (Program.length p2);
      let out1 = Program.run p1 and out2 = Program.run p2 in
      List.iter
        (fun (name, va) ->
          match List.assoc_opt name out2 with
          | None -> Alcotest.failf "%s: output %s missing after O2" app.App.name name
          | Some vb ->
              if not (Vec.equal ~eps va vb) then
                Alcotest.failf "%s: final estimate %s diverges under O2" app.App.name name)
        out1)
    App.all

(* ------------------------------------------------------------------ *)
(* O3: superword batching and the profile-guided fixpoint              *)

let test_superword_app_equivalent () =
  (* Superword batching alone: merged members become one wide kernel
     plus per-member extract slices; every surviving register must
     read back identically through the map (the kernels evaluate their
     members with Program.eval_op, so equality is bit-exact). *)
  List.iter
    (fun (app : App.t) ->
      let p = Compile.compile_application ~opt_level:1 (app.App.graphs (Rng.of_int bench_seed)) in
      List.iter
        (fun (kinds, label) ->
          check_equivalent
            ~what:(Printf.sprintf "%s: superword %s" app.App.name label)
            p (Opt.superword ~kinds p))
        [ (`Mul, "mul"); (`All, "all") ])
    App.all

let test_o3_differential (app : App.t) () =
  (* The full measured O3 loop against the O0 stream, value-by-value
     through the composed map (1e-9, same bar as every other pass). *)
  let p0 = Compile.compile_application ~opt_level:0 (app.App.graphs (Rng.of_int bench_seed)) in
  let p3, map, _ = Opt_loop.optimize_traced ~level:3 p0 in
  check_equivalent ~what:(app.App.name ^ " O0 vs O3") p0 (p3, map)

let test_o3_monotone_cycles () =
  (* Levels only ever help: the measured loop's accept-if-better guard
     makes cycles non-increasing in the level on the probing
     accelerator/policy, for every app. *)
  let accel = Accel.base () in
  List.iter
    (fun (app : App.t) ->
      let p0 = Compile.compile_application ~opt_level:0 (app.App.graphs (Rng.of_int bench_seed)) in
      let cycles p = (Schedule.run ~accel ~policy:Schedule.Ooo_full p).Schedule.cycles in
      let cs =
        List.map
          (fun l -> cycles (if l = 0 then p0 else Opt_loop.optimize ~accel ~level:l p0))
          [ 0; 1; 2; 3 ]
      in
      match cs with
      | [ c0; c1; c2; c3 ] ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: cycles monotone O0 %d >= O1 %d >= O2 %d >= O3 %d" app.App.name
               c0 c1 c2 c3)
            true
            (c0 >= c1 && c1 >= c2 && c2 >= c3)
      | _ -> assert false)
    App.all

let test_cycle_reduction_floor () =
  (* The CI gate's new invariant, asserted in-tree as well: the
     measured O3 loop cuts cycles by >= 5% on at least two of the four
     apps and never schedules any app slower than its O0 stream. *)
  let accel = Accel.base () in
  let reductions =
    List.map
      (fun (a : App.t) ->
        let p0 = Compile.compile_application ~opt_level:0 (a.App.graphs (Rng.of_int bench_seed)) in
        let p3 = Opt_loop.optimize ~accel ~level:3 p0 in
        let c p = (Schedule.run ~accel ~policy:Schedule.Ooo_full p).Schedule.cycles in
        let c0 = c p0 and c3 = c p3 in
        Alcotest.(check bool)
          (Printf.sprintf "%s: O3 (%d) <= O0 (%d) cycles" a.App.name c3 c0)
          true (c3 <= c0);
        1.0 -. (float_of_int c3 /. float_of_int c0))
      App.all
  in
  let at5 = List.length (List.filter (fun r -> r >= 0.05) reductions) in
  Alcotest.(check bool)
    (Printf.sprintf ">= 5%% cycle cut on >= 2 apps (got %d)" at5)
    true (at5 >= 2)

(* ------------------------------------------------------------------ *)
(* QCheck: random factor graphs (generator mirrors test_properties)    *)

let random_linear_graph seed nvars =
  let rng = Rng.of_int seed in
  let g = Graph.create () in
  for i = 0 to nvars - 1 do
    Graph.add_variable g (Printf.sprintf "v%d" i)
      (Var.Vector (Array.init 2 (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0)))
  done;
  for i = 0 to nvars - 1 do
    let z = Array.init 2 (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
    Graph.add_factor g
      (Orianna_factors.Motion_factors.state_cost
         ~name:(Printf.sprintf "prior%d" i)
         ~var:(Printf.sprintf "v%d" i) ~target:z ~sigmas:[| 0.5; 0.5 |])
  done;
  for _ = 1 to nvars do
    let a = Rng.int rng nvars and b = Rng.int rng nvars in
    if a <> b then
      Graph.add_factor g
        (Orianna_factors.Motion_factors.smooth
           ~name:(Printf.sprintf "link%d-%d-%d" a b (Rng.int rng 10000))
           ~a:(Printf.sprintf "v%d" a) ~b:(Printf.sprintf "v%d" b) ~dt:0.1 ~d:1 ~sigma:0.7)
  done;
  g

(* (seed, nvars) shrinks componentwise, so a failure reports a minimal
   failing graph: smallest nvars, then smallest seed, that still
   breaks the property. *)
let pair_seed =
  QCheck.(make Gen.(pair (int_range 0 1_000_000) (int_range 2 7)) ~print:QCheck.Print.(pair int int))

let passes : (string * (Program.t -> Program.t * int array)) list =
  [ ("cse", Opt.cse); ("fuse", Opt.fuse); ("dce", Opt.dce); ("reorder", fun p -> Opt.reorder p) ]

let prop_pass name pass =
  QCheck.Test.make
    ~name:(Printf.sprintf "opt: %s preserves simulated results, never grows" name)
    ~count:60 pair_seed
    (fun (seed, nvars) ->
      let p = Compile.compile ~opt_level:0 (random_linear_graph seed nvars) in
      let p', map = pass p in
      Program.validate p';
      Program.length p' <= Program.length p && equivalent p (p', map))

let prop_pipeline =
  QCheck.Test.make ~name:"opt: full pipeline preserves simulated results, never grows" ~count:60
    pair_seed (fun (seed, nvars) ->
      let p = Compile.compile ~opt_level:0 (random_linear_graph seed nvars) in
      let p', map, report = Opt.optimize_traced ~level:1 p in
      Program.validate p';
      report.Opt.after <= report.Opt.before
      && Program.length p' = report.Opt.after
      && equivalent p (p', map))

let prop_superword =
  (* Batches of either kind slice back to the original values; the
     rebuilt stream is a valid topological order even when the greedy
     grouping has to be repaired for cross-batch cycles. *)
  QCheck.Test.make ~name:"opt: superword batching preserves simulated results" ~count:40
    pair_seed (fun (seed, nvars) ->
      let p = Compile.compile ~opt_level:0 (random_linear_graph seed nvars) in
      List.for_all
        (fun kinds ->
          let ((p', _) as r) = Opt.superword ~min_batch:2 ~kinds p in
          Program.validate p';
          equivalent p r)
        [ `Mul; `All ])

let prop_o3_fixpoint =
  (* Without a probe the fixpoint accepts against the cost-model
     estimate; results must still be preserved exactly. *)
  QCheck.Test.make ~name:"opt: O3 modeled fixpoint preserves simulated results" ~count:30
    pair_seed (fun (seed, nvars) ->
      let p = Compile.compile ~opt_level:0 (random_linear_graph seed nvars) in
      let p', map, _ = Opt.optimize_traced ~level:3 p in
      Program.validate p';
      equivalent p (p', map))

(* ------------------------------------------------------------------ *)
(* Golden snapshots                                                    *)

(* Default resolution works whether the exe runs from the test dir
   (dune runtest) or the repo root (dune exec test/test_isa_opt.exe);
   ORIANNA_GOLDEN_DIR overrides both. *)
let golden_dir () =
  match Sys.getenv_opt "ORIANNA_GOLDEN_DIR" with
  | Some d -> d
  | None -> if Sys.file_exists "golden" then "golden" else "test/golden"

let histogram_json p =
  Json.Obj (List.map (fun (op, n) -> (op, Json.int n)) (Program.stats p).Program.by_opcode)

let test_golden (app : App.t) () =
  let _, p0, p1 = compiled_at_levels app in
  let actual = Json.Obj [ ("O0", histogram_json p0); ("O1", histogram_json p1) ] in
  let path =
    Filename.concat (golden_dir ())
      ("isa_opt_" ^ String.lowercase_ascii app.App.name ^ ".json")
  in
  if Sys.getenv_opt "ORIANNA_UPDATE_GOLDEN" = Some "1" then begin
    let oc = open_out path in
    output_string oc (Json.to_string actual);
    output_char oc '\n';
    close_out oc
  end
  else begin
    let ic = open_in_bin path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let expected = Json.parse contents in
    if expected <> actual then
      Alcotest.failf
        "%s: opcode histogram drifted from %s.@.expected %s@.got      %s@.If the change is \
         intentional, regenerate with:@.  ORIANNA_UPDATE_GOLDEN=1 ORIANNA_GOLDEN_DIR=test/golden \
         dune exec test/test_isa_opt.exe"
        app.App.name path (Json.to_string expected) (Json.to_string actual)
  end

(* ------------------------------------------------------------------ *)
(* Encode round trip / CRC trailer / cache keys on optimized programs  *)

let symbolic_program ~opt_level () =
  let open Orianna_fg in
  let open Orianna_factors in
  let open Orianna_lie in
  let g = Graph.create () in
  let rng = Rng.of_int 8 in
  let p0 = Pose3.random rng ~scale:1.0 in
  let p1 = Pose3.random rng ~scale:1.0 in
  Graph.add_variable g "x0" (Var.Pose3 p0);
  Graph.add_variable g "x1" (Var.Pose3 p1);
  Graph.add_factor g (Pose_factors.prior3 ~name:"prior" ~var:"x0" ~z:p0 ~sigma:0.01);
  Graph.add_factor g
    (Pose_factors.between3 ~name:"odo" ~a:"x0" ~b:"x1" ~z:(Pose3.ominus p1 p0) ~sigma:0.05);
  Graph.add_factor g (Pose_factors.gps3 ~name:"gps" ~var:"x1" ~z:(Pose3.translation p1) ~sigma:0.1);
  Compile.compile ~opt_level g

let same_outputs a b =
  List.for_all (fun (name, va) -> Vec.equal ~eps:1e-12 va (List.assoc name b)) a

let test_encode_roundtrip_optimized () =
  let p = symbolic_program ~opt_level:1 () in
  let p' = Encode.decode (Encode.encode p) in
  Alcotest.(check bool) "same outputs" true (same_outputs (Program.run p) (Program.run p'));
  Alcotest.(check int32) "hash survives the wire" (Program.hash p) (Program.hash p')

let test_encode_kernel_roundtrip_optimized () =
  (* Kernel closures need a resolve registry on decode; CSE/DCE must
     keep every live kernel instruction addressable by name. *)
  let p = Compile.compile_application ~opt_level:1 (App.quadrotor.App.graphs (Rng.of_int 4)) in
  let registry = Hashtbl.create 16 in
  Array.iter
    (fun (i : Instr.t) ->
      match i.Instr.op with
      | Instr.Kernel k -> Hashtbl.replace registry k.Instr.kname k
      | _ -> ())
    p.Program.instrs;
  let resolve name =
    match Hashtbl.find_opt registry name with
    | Some k -> k
    | None -> raise (Encode.Decode_error ("missing " ^ name))
  in
  let p' = Encode.decode ~resolve (Encode.encode p) in
  Alcotest.(check bool) "same outputs" true (same_outputs (Program.run p) (Program.run p'))

let test_crc_trailer_on_optimized () =
  let p = Compile.compile_application ~opt_level:1 (App.manipulator.App.graphs (Rng.of_int 5)) in
  let img = Encode.encode_checksummed p in
  (match Encode.verify img with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "clean image rejected: %s" msg);
  let corrupt = Bytes.of_string img in
  Bytes.set corrupt (Bytes.length corrupt / 2)
    (Char.chr (Char.code (Bytes.get corrupt (Bytes.length corrupt / 2)) lxor 0x10));
  Alcotest.(check bool) "corruption detected" true
    (match Encode.verify (Bytes.to_string corrupt) with Ok _ -> false | Error _ -> true)

let test_hash_changes_structural_key_does_not () =
  (* The serving cache's contract: optimization changes the compiled
     artifact (Program.hash) but not the template (structural key) —
     so the cache keys on the pair (structural key, opt_level). *)
  let graphs = App.mobile_robot.App.graphs (Rng.of_int bench_seed) in
  let graphs' = App.mobile_robot.App.graphs (Rng.of_int (bench_seed + 1)) in
  let p0 = Compile.compile_application ~opt_level:0 graphs in
  let p1 = Compile.compile_application ~opt_level:1 graphs in
  Alcotest.(check bool) "Program.hash changes under optimization" true
    (Program.hash p0 <> Program.hash p1);
  Alcotest.(check int32) "structural key ignores values and optimization"
    (Cache.structural_key ~opt_level:1 graphs)
    (Cache.structural_key ~opt_level:1 graphs');
  Alcotest.(check bool) "opt_level is part of the cache key" true
    (Cache.structural_key ~opt_level:0 graphs <> Cache.structural_key ~opt_level:1 graphs)

(* ------------------------------------------------------------------ *)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "isa_opt"
    [
      ( "differential",
        List.map
          (fun (a : App.t) ->
            Alcotest.test_case a.App.name `Quick (test_app_differential a))
          App.all
        @ [
            Alcotest.test_case "reduction floor" `Quick test_reduction_floor;
            Alcotest.test_case "schedule invariants at O1" `Quick
              test_schedule_invariants_on_optimized;
            Alcotest.test_case "stall-weighted reorder" `Quick
              test_stall_weighted_reorder_equivalent;
            Alcotest.test_case "O2 feedback round" `Quick test_reoptimize_feedback_round;
          ] );
      ( "o3",
        [
          Alcotest.test_case "superword equivalence" `Quick test_superword_app_equivalent;
          Alcotest.test_case "cycle monotonicity O0..O3" `Quick test_o3_monotone_cycles;
          Alcotest.test_case "cycle reduction floor" `Quick test_cycle_reduction_floor;
        ]
        @ List.map
            (fun (a : App.t) ->
              Alcotest.test_case (a.App.name ^ " O0 vs O3") `Quick (test_o3_differential a))
            App.all );
      ( "properties",
        qcheck
          (List.map (fun (name, pass) -> prop_pass name pass) passes
          @ [ prop_pipeline; prop_superword; prop_o3_fixpoint ]) );
      ( "golden",
        List.map
          (fun (a : App.t) -> Alcotest.test_case a.App.name `Quick (test_golden a))
          App.all );
      ( "encode",
        [
          Alcotest.test_case "roundtrip optimized" `Quick test_encode_roundtrip_optimized;
          Alcotest.test_case "kernel roundtrip optimized" `Quick
            test_encode_kernel_roundtrip_optimized;
          Alcotest.test_case "crc trailer optimized" `Quick test_crc_trailer_on_optimized;
          Alcotest.test_case "hash vs structural key" `Quick
            test_hash_changes_structural_key_does_not;
        ] );
    ]
