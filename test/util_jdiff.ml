(* Shared helper for the j1-vs-jN determinism tests: render a JSON
   report with its volatile "meta" header stripped (timestamps, host,
   job count — everything that legitimately differs between runs) and,
   on mismatch, fail with the first diverging byte in context instead
   of dumping two multi-kilobyte payloads. *)

module J = Orianna_obs.Json

let strip_meta = function
  | J.Obj fields -> J.Obj (List.filter (fun (k, _) -> k <> "meta") fields)
  | j -> j

let render j = J.to_string (strip_meta j)

let context s i =
  let lo = max 0 (i - 40) and hi = min (String.length s) (i + 40) in
  String.sub s lo (hi - lo)

let first_divergence a b =
  let n = min (String.length a) (String.length b) in
  let i = ref 0 in
  while !i < n && a.[!i] = b.[!i] do
    incr i
  done;
  !i

(* [check_identical ~what a b] asserts the two reports are byte-equal
   outside their meta headers.  [a] is conventionally the sequential
   (j1) reference. *)
let check_identical ~what a b =
  let sa = render a and sb = render b in
  if not (String.equal sa sb) then begin
    let i = first_divergence sa sb in
    Alcotest.failf "%s: reports diverge at byte %d (lengths %d vs %d)\n  j1: ...%s...\n  jN: ...%s..."
      what i (String.length sa) (String.length sb) (context sa i) (context sb i)
  end
