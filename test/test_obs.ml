module Obs = Orianna_obs.Obs
module Json = Orianna_obs.Json
module Chrome_trace = Orianna_obs.Chrome_trace
module Report = Orianna_obs.Report

(* A hand-cranked clock makes every timing deterministic. *)
let install_clock ?(at = 100.0) () =
  let t = ref at in
  Obs.set_clock (fun () -> !t);
  fun dt -> t := !t +. dt

let with_fresh_registry f =
  let advance = install_clock () in
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:Obs.disable (fun () -> f advance)

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  with_fresh_registry @@ fun advance ->
  Obs.with_span "outer" (fun () ->
      advance 1.0;
      Obs.with_span "inner-a" (fun () -> advance 0.25);
      Obs.with_span ~attrs:[ ("k", "v") ] "inner-b" (fun () -> advance 0.5));
  Obs.with_span "second-root" (fun () -> advance 2.0);
  match Obs.spans () with
  | [ outer; second ] ->
      Alcotest.(check string) "root name" "outer" outer.Obs.name;
      Alcotest.(check (float 1e-9)) "outer start at epoch" 0.0 outer.Obs.start_s;
      Alcotest.(check (float 1e-9)) "outer duration" 1.75 outer.Obs.dur_s;
      Alcotest.(check (list string)) "children in start order" [ "inner-a"; "inner-b" ]
        (List.map (fun (s : Obs.span) -> s.Obs.name) outer.Obs.children);
      let b = List.nth outer.Obs.children 1 in
      Alcotest.(check (float 1e-9)) "inner-b duration" 0.5 b.Obs.dur_s;
      Alcotest.(check (list (pair string string))) "attrs kept" [ ("k", "v") ] b.Obs.attrs;
      Alcotest.(check (float 1e-9)) "self time excludes children" 1.0 (Obs.span_self_s outer);
      Alcotest.(check (float 1e-9)) "second root duration" 2.0 second.Obs.dur_s;
      Alcotest.(check int) "fold counts all spans" 4
        (Obs.fold_spans (fun n _ -> n + 1) 0 (Obs.spans ()))
  | spans -> Alcotest.failf "expected 2 roots, got %d" (List.length spans)

let test_span_records_on_exception () =
  with_fresh_registry @@ fun advance ->
  (try Obs.with_span "boom" (fun () -> advance 0.5; failwith "boom") with Failure _ -> ());
  match Obs.spans () with
  | [ s ] ->
      Alcotest.(check string) "span recorded" "boom" s.Obs.name;
      Alcotest.(check (float 1e-9)) "duration up to raise" 0.5 s.Obs.dur_s
  | spans -> Alcotest.failf "expected 1 root, got %d" (List.length spans)

let test_disabled_is_passthrough () =
  let _advance = install_clock () in
  Obs.disable ();
  Obs.reset ();
  let x = Obs.with_span "invisible" (fun () -> 41 + 1) in
  Obs.count "invisible.counter";
  Obs.observe "invisible.histogram" 1.0;
  Alcotest.(check int) "value returned" 42 x;
  Alcotest.(check int) "no spans" 0 (List.length (Obs.spans ()));
  Alcotest.(check int) "no counters" 0 (List.length (Obs.counters ()));
  Alcotest.(check int) "no histograms" 0 (List.length (Obs.histograms ()))

(* ---------------- counters ---------------- *)

let test_counter_determinism () =
  with_fresh_registry @@ fun _advance ->
  (* Insert in scrambled order; snapshots must come back name-sorted
     and identical across repeated runs. *)
  let feed () =
    Obs.count "z.last";
    Obs.count ~n:3 "a.first";
    Obs.count "m.middle";
    Obs.count ~n:2 "a.first"
  in
  feed ();
  let snap1 = Obs.counters () in
  Obs.reset ();
  feed ();
  let snap2 = Obs.counters () in
  Alcotest.(check (list (pair string int)))
    "sorted by name" [ ("a.first", 5); ("m.middle", 1); ("z.last", 1) ] snap1;
  Alcotest.(check (list (pair string int))) "reproducible" snap1 snap2;
  Alcotest.(check int) "point lookup" 5 (Obs.counter "a.first");
  Alcotest.(check int) "absent counter reads 0" 0 (Obs.counter "nope")

let test_histograms () =
  with_fresh_registry @@ fun _advance ->
  List.iter (Obs.observe "h") [ 2.0; 4.0; 9.0 ];
  match Obs.histograms () with
  | [ ("h", h) ] ->
      Alcotest.(check int) "samples" 3 h.Obs.samples;
      Alcotest.(check (float 1e-9)) "mean" 5.0 (Obs.mean h);
      Alcotest.(check (float 1e-9)) "min" 2.0 h.Obs.hmin;
      Alcotest.(check (float 1e-9)) "max" 9.0 h.Obs.hmax;
      Alcotest.(check (float 1e-9)) "last" 9.0 h.Obs.last
  | _ -> Alcotest.fail "expected exactly one histogram"

(* ---------------- json ---------------- *)

let rec json_equal a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Num x, Json.Num y -> Float.abs (x -. y) <= 1e-12 *. Float.max 1.0 (Float.abs x)
  | Json.Str x, Json.Str y -> x = y
  | Json.Arr xs, Json.Arr ys ->
      List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Json.Obj xs, Json.Obj ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (k, v) (k', v') -> k = k' && json_equal v v') xs ys
  | _ -> false

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("s", Json.Str "quote \" backslash \\ newline \n tab \t done");
        ("i", Json.int 42);
        ("neg", Json.Num (-0.125));
        ("big", Json.Num 1.5e17);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("arr", Json.Arr [ Json.int 1; Json.Str "two"; Json.Obj [] ]);
        ("empty", Json.Arr []);
      ]
  in
  let s = Json.to_string j in
  Alcotest.(check bool) "round trip" true (json_equal j (Json.parse s))

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed input %S" s)
    [ "{"; "[1,"; "tru"; "\"open"; "{\"a\" 1}"; "[] trailing" ]

(* ---------------- exporters ---------------- *)

let test_chrome_trace_valid_json () =
  with_fresh_registry @@ fun advance ->
  Obs.with_span "phase \"one\"" (fun () ->
      advance 0.001;
      Obs.with_span "nested" (fun () -> advance 0.002));
  let events =
    Chrome_trace.of_spans (Obs.spans ())
    @ [
        Chrome_trace.Thread_name { pid = 1; tid = 0; name = "qr#0" };
        Chrome_trace.Duration
          {
            name = "QR";
            cat = "decompose";
            pid = 1;
            tid = 0;
            ts_us = 10.0;
            dur_us = 25.0;
            args = [ ("id", Json.int 7) ];
          };
        Chrome_trace.Counter
          { name = "ready"; pid = 1; ts_us = 10.0; series = [ ("depth", 3.0) ] };
        Chrome_trace.Instant { name = "mark"; cat = "span"; pid = 0; tid = 0; ts_us = 1.0 };
      ]
  in
  let parsed = Json.parse (Chrome_trace.to_string events) in
  (match Json.member "traceEvents" parsed with
  | Some (Json.Arr evs) ->
      Alcotest.(check int) "all events serialized" (List.length events) (List.length evs);
      let durations =
        List.filter (fun e -> Json.member "ph" e = Some (Json.Str "X")) evs
      in
      Alcotest.(check int) "duration events" 3 (List.length durations);
      let names =
        List.filter_map (fun e -> Json.member "name" e) durations
      in
      Alcotest.(check bool) "escaped name survives" true
        (List.mem (Json.Str "phase \"one\"") names)
  | _ -> Alcotest.fail "missing traceEvents array");
  match Json.member "displayTimeUnit" parsed with
  | Some (Json.Str _) -> ()
  | _ -> Alcotest.fail "missing displayTimeUnit"

let test_report_roundtrip () =
  with_fresh_registry @@ fun advance ->
  Obs.with_span "root" (fun () ->
      advance 0.5;
      Obs.count ~n:7 "ops";
      Obs.set_gauge "err" 0.25;
      Obs.observe "lat" 3.0);
  let parsed = Json.parse (Report.to_string ~meta:[ ("app", "Test") ] ()) in
  (match Json.member "counters" parsed with
  | Some (Json.Obj [ ("ops", n) ]) -> Alcotest.(check bool) "counter value" true (n = Json.int 7)
  | _ -> Alcotest.fail "bad counters");
  (match Json.member "spans" parsed with
  | Some (Json.Arr [ root ]) ->
      Alcotest.(check bool) "span name" true (Json.member "name" root = Some (Json.Str "root"));
      (match Json.member "dur_s" root with
      | Some (Json.Num d) -> Alcotest.(check (float 1e-9)) "span duration" 0.5 d
      | _ -> Alcotest.fail "span missing dur_s")
  | _ -> Alcotest.fail "bad spans");
  match Json.member "meta" parsed with
  | Some (Json.Obj [ ("app", Json.Str "Test") ]) -> ()
  | _ -> Alcotest.fail "bad meta"

(* ---------------- quantiles ---------------- *)

(* The log-bucketed quantile must track the exact sorted percentile
   within one bucket width: relative error <= 2^(1/sub) - 1 (~4.4%
   at sub = 16); we assert a 5% ceiling. *)
let prop_quantile_error_bound =
  QCheck.Test.make ~name:"obs: log-bucket quantile within 5% of exact percentile" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 200) (float_bound_exclusive 1e6)) (int_bound 100))
    (fun (raw, p) ->
      QCheck.assume (raw <> []);
      let samples = List.map (fun v -> Float.abs v +. 1e-3) raw in
      let h = Obs.Hist.create () in
      List.iter (Obs.Hist.add h) samples;
      let snap = Obs.snapshot_hist h in
      let exact =
        Orianna_util.Stats.percentile (Array.of_list samples) (float_of_int p)
      in
      let approx = Obs.quantile snap (float_of_int p) in
      Float.abs (approx -. exact) <= 0.05 *. Float.max exact 1e-9)

let test_quantile_extrema () =
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.add h) [ 5.0; 1.0; 9.0 ];
  let snap = Obs.snapshot_hist h in
  Alcotest.(check (float 1e-9)) "p0 is min" 1.0 (Obs.quantile snap 0.0);
  Alcotest.(check (float 1e-9)) "p100 is max" 9.0 (Obs.quantile snap 100.0)

(* ---------------- sharding ---------------- *)

(* The multicore contract: the same multiset of metric writes yields
   the same snapshot whether it all happened on one domain or was
   split across four.  Gauges and a histogram's [last] field are
   last-writer-wins (inherently timing-dependent across domains), so
   the property covers counters and histogram contents. *)
let prop_shard_merge_domain_invariant =
  QCheck.Test.make ~name:"obs: snapshot invariant under domain partitioning" ~count:50
    QCheck.(list_of_size Gen.(0 -- 120) (triple (int_bound 2) (int_bound 3) (float_bound_exclusive 1e4)))
    (fun ops ->
      let apply (kind, name_i, v) =
        match kind with
        | 0 -> Obs.count ~n:(1 + name_i) (Printf.sprintf "c.m%d" name_i)
        | 1 -> Obs.observe (Printf.sprintf "h.m%d" name_i) (Float.abs v +. 0.001)
        | _ -> Obs.observe (Printf.sprintf "h.n%d" name_i) ((Float.abs v *. 2.0) +. 0.5)
      in
      let hist_key (name, (h : Obs.histogram)) =
        (name, h.Obs.samples, h.Obs.hmin, h.Obs.hmax, h.Obs.nonpos, Array.to_list h.Obs.counts)
      in
      let hist_sums hs = List.map (fun (_, (h : Obs.histogram)) -> h.Obs.sum) hs in
      let snapshot () = (Obs.counters (), Obs.histograms ()) in
      Obs.enable ();
      Obs.reset ();
      List.iter apply ops;
      let seq_counters, seq_hists = snapshot () in
      Obs.reset ();
      let chunks = Array.make 4 [] in
      List.iteri (fun i op -> chunks.(i mod 4) <- op :: chunks.(i mod 4)) ops;
      let domains =
        Array.map (fun chunk -> Domain.spawn (fun () -> List.iter apply chunk)) chunks
      in
      Array.iter Domain.join domains;
      let par_counters, par_hists = snapshot () in
      Obs.disable ();
      Obs.reset ();
      seq_counters = par_counters
      && List.map hist_key seq_hists = List.map hist_key par_hists
      (* float sums may differ in rounding across addition orders *)
      && List.for_all2
           (fun a b -> Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a))
           (hist_sums seq_hists) (hist_sums par_hists))

(* ---------------- gc spans ---------------- *)

let test_span_gc_attrs () =
  (* Real clock and real Gc here: the attribute values are
     environment-dependent, only their presence and shape are not. *)
  Obs.set_clock (fun () -> Unix.gettimeofday ());
  Obs.enable ();
  Obs.reset ();
  Obs.with_span ~gc:true "alloc" (fun () -> ignore (Sys.opaque_identity (Array.make 10_000 0.0)));
  Obs.with_span "quiet" (fun () -> ());
  let spans = Obs.spans () in
  Obs.disable ();
  Obs.reset ();
  match spans with
  | [ alloc; quiet ] ->
      List.iter
        (fun key ->
          match List.assoc_opt key alloc.Obs.attrs with
          | Some v -> (
              match float_of_string_opt v with
              | Some f -> Alcotest.(check bool) (key ^ " non-negative") true (f >= 0.0)
              | None -> Alcotest.failf "attr %s not numeric: %s" key v)
          | None -> Alcotest.failf "missing gc attr %s" key)
        [ "gc.minor_words"; "gc.promoted_words"; "gc.minor_collections"; "gc.major_collections" ];
      Alcotest.(check bool) "no gc attrs without ~gc" true
        (List.for_all
           (fun (k, _) -> not (String.length k >= 3 && String.sub k 0 3 = "gc."))
           quiet.Obs.attrs)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

(* ---------------- chrome metadata round-trip ---------------- *)

let test_chrome_meta_events_roundtrip () =
  let events =
    [
      Chrome_trace.Thread_name { pid = 3; tid = 0; name = "slots" };
      Chrome_trace.Process_name { pid = 3; name = "pool domain 0 (caller)" };
      Chrome_trace.Instant { name = "submit run 1 (9 slots)"; cat = "pool"; pid = 3; tid = 0; ts_us = 12.5 };
      Chrome_trace.Counter
        { name = "pool.gc.minor_words"; pid = 3; ts_us = 99.0; series = [ ("minor_words", 4096.0) ] };
    ]
  in
  let parsed = Json.parse (Chrome_trace.to_string events) in
  let evs =
    match Json.member "traceEvents" parsed with
    | Some (Json.Arr evs) -> evs
    | _ -> Alcotest.fail "missing traceEvents"
  in
  let find ph =
    match List.find_opt (fun e -> Json.member "ph" e = Some (Json.Str ph)) evs with
    | Some e -> e
    | None -> Alcotest.failf "no %S event" ph
  in
  (* metadata: thread_name and process_name both use ph "M",
     distinguished by their "name" field *)
  let metas = List.filter (fun e -> Json.member "ph" e = Some (Json.Str "M")) evs in
  Alcotest.(check int) "two metadata events" 2 (List.length metas);
  let meta_arg kind =
    match
      List.find_opt (fun e -> Json.member "name" e = Some (Json.Str kind)) metas
    with
    | Some e -> (
        match Json.member "args" e with
        | Some args -> Json.member "name" args
        | None -> None)
    | None -> None
  in
  Alcotest.(check bool) "thread name survives" true
    (meta_arg "thread_name" = Some (Json.Str "slots"));
  Alcotest.(check bool) "process name survives" true
    (meta_arg "process_name" = Some (Json.Str "pool domain 0 (caller)"));
  let instant = find "i" in
  Alcotest.(check bool) "instant name" true
    (Json.member "name" instant = Some (Json.Str "submit run 1 (9 slots)"));
  Alcotest.(check bool) "instant ts" true (Json.member "ts" instant = Some (Json.Num 12.5));
  let counter = find "C" in
  (match Json.member "args" counter with
  | Some args ->
      Alcotest.(check bool) "counter series value" true
        (Json.member "minor_words" args = Some (Json.Num 4096.0))
  | None -> Alcotest.fail "counter missing args");
  Alcotest.(check bool) "counter pid" true (Json.member "pid" counter = Some (Json.Num 3.0))

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and timing" `Quick test_span_nesting;
          Alcotest.test_case "recorded on exception" `Quick test_span_records_on_exception;
          Alcotest.test_case "disabled passthrough" `Quick test_disabled_is_passthrough;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter determinism" `Quick test_counter_determinism;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "quantile extrema" `Quick test_quantile_extrema;
          QCheck_alcotest.to_alcotest prop_quantile_error_bound;
          QCheck_alcotest.to_alcotest prop_shard_merge_domain_invariant;
        ] );
      ( "gc",
        [ Alcotest.test_case "with_span ~gc attrs" `Quick test_span_gc_attrs ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace valid json" `Quick test_chrome_trace_valid_json;
          Alcotest.test_case "chrome metadata round-trip" `Quick test_chrome_meta_events_roundtrip;
          Alcotest.test_case "run report" `Quick test_report_roundtrip;
        ] );
    ]
