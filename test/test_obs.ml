module Obs = Orianna_obs.Obs
module Json = Orianna_obs.Json
module Chrome_trace = Orianna_obs.Chrome_trace
module Report = Orianna_obs.Report

(* A hand-cranked clock makes every timing deterministic. *)
let install_clock ?(at = 100.0) () =
  let t = ref at in
  Obs.set_clock (fun () -> !t);
  fun dt -> t := !t +. dt

let with_fresh_registry f =
  let advance = install_clock () in
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:Obs.disable (fun () -> f advance)

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  with_fresh_registry @@ fun advance ->
  Obs.with_span "outer" (fun () ->
      advance 1.0;
      Obs.with_span "inner-a" (fun () -> advance 0.25);
      Obs.with_span ~attrs:[ ("k", "v") ] "inner-b" (fun () -> advance 0.5));
  Obs.with_span "second-root" (fun () -> advance 2.0);
  match Obs.spans () with
  | [ outer; second ] ->
      Alcotest.(check string) "root name" "outer" outer.Obs.name;
      Alcotest.(check (float 1e-9)) "outer start at epoch" 0.0 outer.Obs.start_s;
      Alcotest.(check (float 1e-9)) "outer duration" 1.75 outer.Obs.dur_s;
      Alcotest.(check (list string)) "children in start order" [ "inner-a"; "inner-b" ]
        (List.map (fun (s : Obs.span) -> s.Obs.name) outer.Obs.children);
      let b = List.nth outer.Obs.children 1 in
      Alcotest.(check (float 1e-9)) "inner-b duration" 0.5 b.Obs.dur_s;
      Alcotest.(check (list (pair string string))) "attrs kept" [ ("k", "v") ] b.Obs.attrs;
      Alcotest.(check (float 1e-9)) "self time excludes children" 1.0 (Obs.span_self_s outer);
      Alcotest.(check (float 1e-9)) "second root duration" 2.0 second.Obs.dur_s;
      Alcotest.(check int) "fold counts all spans" 4
        (Obs.fold_spans (fun n _ -> n + 1) 0 (Obs.spans ()))
  | spans -> Alcotest.failf "expected 2 roots, got %d" (List.length spans)

let test_span_records_on_exception () =
  with_fresh_registry @@ fun advance ->
  (try Obs.with_span "boom" (fun () -> advance 0.5; failwith "boom") with Failure _ -> ());
  match Obs.spans () with
  | [ s ] ->
      Alcotest.(check string) "span recorded" "boom" s.Obs.name;
      Alcotest.(check (float 1e-9)) "duration up to raise" 0.5 s.Obs.dur_s
  | spans -> Alcotest.failf "expected 1 root, got %d" (List.length spans)

let test_disabled_is_passthrough () =
  let _advance = install_clock () in
  Obs.disable ();
  Obs.reset ();
  let x = Obs.with_span "invisible" (fun () -> 41 + 1) in
  Obs.count "invisible.counter";
  Obs.observe "invisible.histogram" 1.0;
  Alcotest.(check int) "value returned" 42 x;
  Alcotest.(check int) "no spans" 0 (List.length (Obs.spans ()));
  Alcotest.(check int) "no counters" 0 (List.length (Obs.counters ()));
  Alcotest.(check int) "no histograms" 0 (List.length (Obs.histograms ()))

(* ---------------- counters ---------------- *)

let test_counter_determinism () =
  with_fresh_registry @@ fun _advance ->
  (* Insert in scrambled order; snapshots must come back name-sorted
     and identical across repeated runs. *)
  let feed () =
    Obs.count "z.last";
    Obs.count ~n:3 "a.first";
    Obs.count "m.middle";
    Obs.count ~n:2 "a.first"
  in
  feed ();
  let snap1 = Obs.counters () in
  Obs.reset ();
  feed ();
  let snap2 = Obs.counters () in
  Alcotest.(check (list (pair string int)))
    "sorted by name" [ ("a.first", 5); ("m.middle", 1); ("z.last", 1) ] snap1;
  Alcotest.(check (list (pair string int))) "reproducible" snap1 snap2;
  Alcotest.(check int) "point lookup" 5 (Obs.counter "a.first");
  Alcotest.(check int) "absent counter reads 0" 0 (Obs.counter "nope")

let test_histograms () =
  with_fresh_registry @@ fun _advance ->
  List.iter (Obs.observe "h") [ 2.0; 4.0; 9.0 ];
  match Obs.histograms () with
  | [ ("h", h) ] ->
      Alcotest.(check int) "samples" 3 h.Obs.samples;
      Alcotest.(check (float 1e-9)) "mean" 5.0 (Obs.mean h);
      Alcotest.(check (float 1e-9)) "min" 2.0 h.Obs.hmin;
      Alcotest.(check (float 1e-9)) "max" 9.0 h.Obs.hmax;
      Alcotest.(check (float 1e-9)) "last" 9.0 h.Obs.last
  | _ -> Alcotest.fail "expected exactly one histogram"

(* ---------------- json ---------------- *)

let rec json_equal a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Num x, Json.Num y -> Float.abs (x -. y) <= 1e-12 *. Float.max 1.0 (Float.abs x)
  | Json.Str x, Json.Str y -> x = y
  | Json.Arr xs, Json.Arr ys ->
      List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Json.Obj xs, Json.Obj ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (k, v) (k', v') -> k = k' && json_equal v v') xs ys
  | _ -> false

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("s", Json.Str "quote \" backslash \\ newline \n tab \t done");
        ("i", Json.int 42);
        ("neg", Json.Num (-0.125));
        ("big", Json.Num 1.5e17);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("arr", Json.Arr [ Json.int 1; Json.Str "two"; Json.Obj [] ]);
        ("empty", Json.Arr []);
      ]
  in
  let s = Json.to_string j in
  Alcotest.(check bool) "round trip" true (json_equal j (Json.parse s))

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed input %S" s)
    [ "{"; "[1,"; "tru"; "\"open"; "{\"a\" 1}"; "[] trailing" ]

(* ---------------- exporters ---------------- *)

let test_chrome_trace_valid_json () =
  with_fresh_registry @@ fun advance ->
  Obs.with_span "phase \"one\"" (fun () ->
      advance 0.001;
      Obs.with_span "nested" (fun () -> advance 0.002));
  let events =
    Chrome_trace.of_spans (Obs.spans ())
    @ [
        Chrome_trace.Thread_name { pid = 1; tid = 0; name = "qr#0" };
        Chrome_trace.Duration
          {
            name = "QR";
            cat = "decompose";
            pid = 1;
            tid = 0;
            ts_us = 10.0;
            dur_us = 25.0;
            args = [ ("id", Json.int 7) ];
          };
        Chrome_trace.Counter
          { name = "ready"; pid = 1; ts_us = 10.0; series = [ ("depth", 3.0) ] };
        Chrome_trace.Instant { name = "mark"; cat = "span"; pid = 0; tid = 0; ts_us = 1.0 };
      ]
  in
  let parsed = Json.parse (Chrome_trace.to_string events) in
  (match Json.member "traceEvents" parsed with
  | Some (Json.Arr evs) ->
      Alcotest.(check int) "all events serialized" (List.length events) (List.length evs);
      let durations =
        List.filter (fun e -> Json.member "ph" e = Some (Json.Str "X")) evs
      in
      Alcotest.(check int) "duration events" 3 (List.length durations);
      let names =
        List.filter_map (fun e -> Json.member "name" e) durations
      in
      Alcotest.(check bool) "escaped name survives" true
        (List.mem (Json.Str "phase \"one\"") names)
  | _ -> Alcotest.fail "missing traceEvents array");
  match Json.member "displayTimeUnit" parsed with
  | Some (Json.Str _) -> ()
  | _ -> Alcotest.fail "missing displayTimeUnit"

let test_report_roundtrip () =
  with_fresh_registry @@ fun advance ->
  Obs.with_span "root" (fun () ->
      advance 0.5;
      Obs.count ~n:7 "ops";
      Obs.set_gauge "err" 0.25;
      Obs.observe "lat" 3.0);
  let parsed = Json.parse (Report.to_string ~meta:[ ("app", "Test") ] ()) in
  (match Json.member "counters" parsed with
  | Some (Json.Obj [ ("ops", n) ]) -> Alcotest.(check bool) "counter value" true (n = Json.int 7)
  | _ -> Alcotest.fail "bad counters");
  (match Json.member "spans" parsed with
  | Some (Json.Arr [ root ]) ->
      Alcotest.(check bool) "span name" true (Json.member "name" root = Some (Json.Str "root"));
      (match Json.member "dur_s" root with
      | Some (Json.Num d) -> Alcotest.(check (float 1e-9)) "span duration" 0.5 d
      | _ -> Alcotest.fail "span missing dur_s")
  | _ -> Alcotest.fail "bad spans");
  match Json.member "meta" parsed with
  | Some (Json.Obj [ ("app", Json.Str "Test") ]) -> ()
  | _ -> Alcotest.fail "bad meta"

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and timing" `Quick test_span_nesting;
          Alcotest.test_case "recorded on exception" `Quick test_span_records_on_exception;
          Alcotest.test_case "disabled passthrough" `Quick test_disabled_is_passthrough;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter determinism" `Quick test_counter_determinism;
          Alcotest.test_case "histograms" `Quick test_histograms;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace valid json" `Quick test_chrome_trace_valid_json;
          Alcotest.test_case "run report" `Quick test_report_roundtrip;
        ] );
    ]
